// Request/response parsing: strict, total, never throws on hostile input.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/json.h"
#include "serve/request.h"

namespace cosparse::serve {
namespace {

TEST(Algo, StringRoundTrip) {
  for (const Algo a : {Algo::kBfs, Algo::kSssp, Algo::kPagerank, Algo::kCf})
    EXPECT_EQ(algo_from_string(to_string(a)), a);
  EXPECT_THROW((void)algo_from_string("dijkstra"), Error);
}

TEST(ParseRequest, FullDocument) {
  Json doc = Json::object();
  doc["dataset"] = "twitter";
  doc["algo"] = "sssp";
  doc["tenant"] = "alice";
  doc["source"] = 42;
  doc["iterations"] = 5;
  doc["seed"] = 9;
  doc["arrival_us"] = 1234;
  const ParsedRequest p = parse_request(doc);
  ASSERT_TRUE(p.ok()) << p.error;
  EXPECT_EQ(p.request->dataset, "twitter");
  EXPECT_EQ(p.request->algo, Algo::kSssp);
  EXPECT_EQ(p.request->tenant, "alice");
  EXPECT_EQ(p.request->source, 42);
  EXPECT_EQ(p.request->iterations, 5u);
  EXPECT_EQ(p.request->seed, 9u);
  EXPECT_EQ(p.request->arrival_us, 1234u);
}

TEST(ParseRequest, MandatoryFields) {
  Json no_dataset = Json::object();
  no_dataset["algo"] = "bfs";
  EXPECT_FALSE(parse_request(no_dataset).ok());
  EXPECT_EQ(parse_request(no_dataset).error_field, "dataset");

  Json no_algo = Json::object();
  no_algo["dataset"] = "twitter";
  EXPECT_FALSE(parse_request(no_algo).ok());
  EXPECT_EQ(parse_request(no_algo).error_field, "algo");
}

TEST(ParseRequest, UnknownFieldIsAStructuredError) {
  Json doc = Json::object();
  doc["dataset"] = "twitter";
  doc["algo"] = "bfs";
  doc["sauce"] = 3;
  const ParsedRequest p = parse_request(doc);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error_field, "sauce");
  EXPECT_NE(p.error.find("sauce"), std::string::npos);
}

TEST(ParseRequest, TypeMismatchNamesTheField) {
  Json doc = Json::object();
  doc["dataset"] = "twitter";
  doc["algo"] = "bfs";
  doc["source"] = "zero";
  const ParsedRequest p = parse_request(doc);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error_field, "source");
}

TEST(ParseRequest, UnknownAlgoIsAStructuredError) {
  Json doc = Json::object();
  doc["dataset"] = "twitter";
  doc["algo"] = "bellman-ford";
  const ParsedRequest p = parse_request(doc);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error_field, "algo");
}

TEST(ParseRequest, NonObjectDocument) {
  EXPECT_FALSE(parse_request(Json(std::int64_t{7})).ok());
  EXPECT_FALSE(parse_request(Json::array()).ok());
}

TEST(ParseRequestLine, TruncatedAndGarbageInputNeverThrow) {
  const char* hostile[] = {
      "",
      "{",
      "{\"dataset\": \"tw",
      "not json",
      "[1, 2, 3]",
      "{\"dataset\": \"twitter\", \"algo\": \"bfs\"} trailing",
      "{\"dataset\": null, \"algo\": \"bfs\"}",
      "{\"source\": -1, \"dataset\": \"twitter\", \"algo\": \"bfs\"}",
      "\x01\x02\xff",
  };
  for (const char* line : hostile) {
    const ParsedRequest p = parse_request_line(line);
    EXPECT_FALSE(p.ok()) << line;
    EXPECT_FALSE(p.error.empty()) << line;
  }
}

TEST(ParseRequestLine, ValidLineParses) {
  const ParsedRequest p =
      parse_request_line("{\"dataset\": \"vsp\", \"algo\": \"pagerank\"}");
  ASSERT_TRUE(p.ok()) << p.error;
  EXPECT_EQ(p.request->algo, Algo::kPagerank);
}

TEST(RequestJson, RoundTripThroughParse) {
  QueryRequest r;
  r.id = 3;
  r.arrival_us = 500;
  r.tenant = "t-1";
  r.dataset = "youtube";
  r.algo = Algo::kCf;
  r.source = 11;
  r.iterations = 2;
  r.seed = 1234;
  // to_json includes the daemon-assigned id; strip it the way a client
  // would before resubmitting.
  Json doc = to_json(r);
  Json resubmit = Json::object();
  for (const auto& [key, value] : doc.members())
    if (key != "id") resubmit[key] = value;
  const ParsedRequest p = parse_request(resubmit);
  ASSERT_TRUE(p.ok()) << p.error;
  EXPECT_EQ(p.request->dataset, r.dataset);
  EXPECT_EQ(p.request->algo, r.algo);
  EXPECT_EQ(p.request->seed, r.seed);
  EXPECT_EQ(p.request->arrival_us, r.arrival_us);
}

TEST(ResponseJson, ResultsSubsetExcludesWallClock) {
  QueryResponse r;
  r.id = 1;
  r.status = Status::kOk;
  r.digest = "deadbeefdeadbeef";
  r.wall_service_ms = 3.25;
  const std::string results = results_json(r).dump();
  EXPECT_EQ(results.find("wall_service_ms"), std::string::npos);
  const std::string wire = wire_json(r).dump();
  EXPECT_NE(wire.find("wall_service_ms"), std::string::npos);
  EXPECT_NE(wire.find("deadbeef"), std::string::npos);
}

TEST(ResponseJson, LatencyClampsToZero) {
  QueryResponse r;
  r.arrival_us = 100;
  r.finish_us = 40;  // rejected responses can finish "before" arrival
  EXPECT_EQ(r.latency_us(), 0u);
  r.finish_us = 160;
  EXPECT_EQ(r.latency_us(), 60u);
}

}  // namespace
}  // namespace cosparse::serve
