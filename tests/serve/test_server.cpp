// Server end-to-end: schedule + execute + report, both exec backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/report.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace cosparse::serve {
namespace {

ServeConfig tiny_config(const std::string& exec_mode = "native") {
  ServeConfig cfg;
  cfg.scheduler_type = "same-dataset-batch";
  cfg.max_active_reqs = 16;
  cfg.max_batch_size = 4;
  cfg.virtual_workers = 2;
  cfg.exec_mode = exec_mode;
  cfg.system = "2x2";
  cfg.scale = 128;
  cfg.traffic.request_interval_us = 300;
  cfg.traffic.request_total_cnt = 16;
  cfg.traffic.seed = 11;
  cfg.traffic.datasets = {"twitter", "vsp"};
  cfg.traffic.algos = {"bfs", "sssp", "pagerank"};
  return cfg;
}

TEST(Server, ReplayProducesAWellFormedReport) {
  Server server(tiny_config());
  const Json report = server.replay();
  ASSERT_NE(report.find("schema"), nullptr);
  EXPECT_EQ(report.find("schema")->as_string(), "cosparse.run_report/v1");
  EXPECT_EQ(report.find("tool")->as_string(), "cosparsed");
  ASSERT_NE(report.find("results"), nullptr);
  const Json& results = *report.find("results");
  ASSERT_NE(results.find("responses"), nullptr);
  ASSERT_NE(results.find("results_digest"), nullptr);
  ASSERT_NE(results.find("schedule"), nullptr);
  ASSERT_NE(report.find("timing"), nullptr);
  EXPECT_NE(report.find("timing")->find("total_wall_ms"), nullptr);
  EXPECT_NE(report.find("timing")->find("host_cache"), nullptr);
  // Wall clock never leaks into the deterministic results section.
  EXPECT_EQ(results.dump().find("wall"), std::string::npos);
}

TEST(Server, EveryOkResponseCarriesADigest) {
  Server server(tiny_config());
  (void)server.replay();
  std::size_t ok = 0;
  for (const QueryResponse& r : server.schedule().responses) {
    if (r.status != Status::kOk) continue;
    ++ok;
    EXPECT_EQ(r.digest.size(), 16u) << "id " << r.id;
    EXPECT_GT(r.result_elems, 0u);
    EXPECT_GT(r.algo_iterations, 0u);
    EXPECT_GT(r.wall_service_ms, 0.0);
  }
  EXPECT_GT(ok, 0u);
}

TEST(Server, SimAndNativeBackendsAgreeBitForBit) {
  Server native(tiny_config("native"));
  const Json nrep = native.replay();
  Server sim(tiny_config("sim"));
  const Json srep = sim.replay();
  EXPECT_EQ(obs::functional_subset(nrep).dump(),
            obs::functional_subset(srep).dump());
}

TEST(Server, ServeMergesPreErrorsById) {
  ServeConfig cfg = tiny_config();
  std::vector<QueryRequest> trace = generate_trace(cfg.traffic);
  trace.resize(4);
  // Simulate two unparseable JSONL lines that claimed ids 2 and 5 —
  // renumber the real requests around them the way cosparsed does.
  trace[0].id = 1;
  trace[1].id = 3;
  trace[2].id = 4;
  trace[3].id = 6;
  std::vector<QueryResponse> pre_errors(2);
  pre_errors[0].id = 2;
  pre_errors[0].status = Status::kError;
  pre_errors[0].error = "bad request JSON: truncated";
  pre_errors[1].id = 5;
  pre_errors[1].status = Status::kError;
  pre_errors[1].error = "unknown field 'sauce'";

  Server server(cfg);
  const Json report = server.serve(trace, pre_errors);
  const Json& responses = *report.find("results")->find("responses");
  ASSERT_EQ(responses.size(), 6u);
  std::vector<std::uint64_t> ids;
  for (const Json& r : responses.items())
    ids.push_back(static_cast<std::uint64_t>(r.find("id")->as_int()));
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(responses.at(1).find("status")->as_string(), "error");
  EXPECT_EQ(responses.at(4).find("status")->as_string(), "error");
}

TEST(Server, HostCacheNeverServesMoreMissesThanDatasets) {
  ServeConfig cfg = tiny_config();
  Server server(cfg);
  (void)server.replay();
  const CacheStats& s = server.cache_stats();
  EXPECT_LE(s.misses, cfg.traffic.datasets.size());
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(server.schedule().batches.size()));
}

TEST(Server, SourceVerticesAreReducedModuloDimension) {
  ServeConfig cfg = tiny_config();
  cfg.scheduler_type = "fcfs";
  QueryRequest r;
  r.id = 1;
  r.dataset = "twitter";
  r.algo = Algo::kBfs;
  r.source = 1u << 30;  // far beyond the scaled dimension
  Server server(cfg);
  (void)server.serve({r});
  ASSERT_EQ(server.schedule().responses.size(), 1u);
  EXPECT_EQ(server.schedule().responses[0].status, Status::kOk);
}

TEST(Server, RerunningReplayIsDeterministic) {
  Server a(tiny_config());
  Server b(tiny_config());
  const Json ra = a.replay();
  const Json rb = b.replay();
  EXPECT_EQ(obs::functional_subset(ra).dump(),
            obs::functional_subset(rb).dump());
}

}  // namespace
}  // namespace cosparse::serve
