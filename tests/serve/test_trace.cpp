// Deterministic load-trace generation: pure function of the config.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "serve/trace.h"

namespace cosparse::serve {
namespace {

TrafficConfig small_traffic() {
  TrafficConfig t;
  t.request_interval_us = 100;
  t.request_total_cnt = 200;
  t.seed = 42;
  t.datasets = {"twitter", "vsp"};
  t.algos = {"bfs", "pagerank"};
  t.tenants = 3;
  return t;
}

TEST(Trace, SameConfigSameBytes) {
  const TrafficConfig t = small_traffic();
  const auto a = generate_trace(t);
  const auto b = generate_trace(t);
  EXPECT_EQ(trace_json(a).dump(), trace_json(b).dump());
}

TEST(Trace, CountIdsAndOrdering) {
  const auto trace = generate_trace(small_traffic());
  ASSERT_EQ(trace.size(), 200u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i + 1);
    if (i > 0) EXPECT_GE(trace[i].arrival_us, trace[i - 1].arrival_us);
  }
}

TEST(Trace, MixDrawsFromConfiguredLists) {
  const TrafficConfig t = small_traffic();
  const auto trace = generate_trace(t);
  std::set<std::string> datasets;
  std::set<std::string> algos;
  std::set<std::string> tenants;
  for (const QueryRequest& r : trace) {
    datasets.insert(r.dataset);
    algos.insert(to_string(r.algo));
    tenants.insert(r.tenant);
  }
  for (const std::string& d : datasets)
    EXPECT_NE(std::find(t.datasets.begin(), t.datasets.end(), d),
              t.datasets.end())
        << d;
  for (const std::string& a : algos)
    EXPECT_NE(std::find(t.algos.begin(), t.algos.end(), a), t.algos.end())
        << a;
  // 200 uniform draws over 2/2/3 options hit every option with
  // overwhelming probability — a miss means the mix stream is broken.
  EXPECT_EQ(datasets.size(), t.datasets.size());
  EXPECT_EQ(algos.size(), t.algos.size());
  EXPECT_EQ(tenants.size(), t.tenants);
}

TEST(Trace, SeedChangesArrivalsAndMix) {
  TrafficConfig t = small_traffic();
  const auto a = generate_trace(t);
  t.seed = 43;
  const auto b = generate_trace(t);
  EXPECT_NE(trace_json(a).dump(), trace_json(b).dump());
}

TEST(Trace, BurstyDiffersFromPoissonAndCompressesArrivals) {
  TrafficConfig t = small_traffic();
  const auto poisson = generate_trace(t);
  t.arrival = "bursty";
  const auto bursty = generate_trace(t);
  EXPECT_NE(trace_json(poisson).dump(), trace_json(bursty).dump());
  // Bursts run burst_factor x faster for part of every period, so the
  // bursty trace finishes earlier in virtual time for the same request
  // count and mean interval.
  EXPECT_LT(bursty.back().arrival_us, poisson.back().arrival_us);
}

TEST(Trace, MeanInterArrivalTracksRequestInterval) {
  TrafficConfig t = small_traffic();
  t.request_total_cnt = 2000;
  const auto trace = generate_trace(t);
  const double mean =
      static_cast<double>(trace.back().arrival_us) /
      static_cast<double>(trace.size());
  // Exponential inter-arrivals with mean 100us: the sample mean over
  // 2000 draws sits well within [60, 140].
  EXPECT_GT(mean, 60.0);
  EXPECT_LT(mean, 140.0);
}

}  // namespace
}  // namespace cosparse::serve
