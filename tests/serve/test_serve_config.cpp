// Strict parse + round-trip coverage for cosparse.serve_config/v1.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/json.h"
#include "serve/config.h"

namespace cosparse::serve {
namespace {

Json minimal_doc() {
  Json doc = Json::object();
  doc["schema"] = std::string(kServeConfigSchema);
  return doc;
}

TEST(ServeConfig, MinimalDocumentYieldsDefaults) {
  const ServeConfig cfg = ServeConfig::from_json(minimal_doc());
  EXPECT_EQ(cfg.scheduler_type, "same-dataset-batch");
  EXPECT_EQ(cfg.max_active_reqs, 64u);
  EXPECT_EQ(cfg.max_batch_size, 8u);
  EXPECT_EQ(cfg.virtual_workers, 2u);
  EXPECT_EQ(cfg.exec_mode, "native");
  EXPECT_EQ(cfg.scale, 64u);
  EXPECT_EQ(cfg.traffic.arrival, "poisson");
  EXPECT_EQ(cfg.traffic.request_total_cnt, 100u);
  EXPECT_FALSE(cfg.traffic.datasets.empty());
  EXPECT_FALSE(cfg.traffic.algos.empty());
}

TEST(ServeConfig, RoundTripIsLossless) {
  ServeConfig cfg;
  cfg.scheduler_type = "fcfs";
  cfg.max_active_reqs = 7;
  cfg.max_batch_size = 3;
  cfg.virtual_workers = 5;
  cfg.cache_budget_bytes = 12345678;
  cfg.exec_mode = "sim";
  cfg.system = "4x4";
  cfg.scale = 128;
  cfg.dataset_seed = 99;
  cfg.traffic.arrival = "bursty";
  cfg.traffic.request_interval_us = 250;
  cfg.traffic.request_total_cnt = 42;
  cfg.traffic.burst_factor = 4.0;
  cfg.traffic.burst_fraction = 0.25;
  cfg.traffic.burst_period_us = 5000;
  cfg.traffic.seed = 77;
  cfg.traffic.datasets = {"twitter"};
  cfg.traffic.algos = {"sssp", "cf"};
  cfg.traffic.tenants = 9;

  const ServeConfig back = ServeConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.to_json().dump(), cfg.to_json().dump());
  EXPECT_EQ(back.scheduler_type, "fcfs");
  EXPECT_EQ(back.traffic.datasets, cfg.traffic.datasets);
  EXPECT_EQ(back.traffic.algos, cfg.traffic.algos);
}

TEST(ServeConfig, MissingSchemaIsAnError) {
  Json doc = Json::object();
  doc["max_active_reqs"] = 4;
  EXPECT_THROW((void)ServeConfig::from_json(doc), Error);
}

TEST(ServeConfig, WrongSchemaIsAnError) {
  Json doc = minimal_doc();
  doc["schema"] = std::string("cosparse.run_report/v1");
  EXPECT_THROW((void)ServeConfig::from_json(doc), Error);
}

TEST(ServeConfig, NonObjectDocumentIsAnError) {
  EXPECT_THROW((void)ServeConfig::from_json(Json(std::int64_t{3})), Error);
}

TEST(ServeConfig, UnknownTopLevelFieldIsAnError) {
  Json doc = minimal_doc();
  doc["warp_speed"] = true;
  try {
    (void)ServeConfig::from_json(doc);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("warp_speed"), std::string::npos);
  }
}

TEST(ServeConfig, UnknownTrafficFieldNamesThePath) {
  Json doc = minimal_doc();
  Json traffic = Json::object();
  traffic["requests_interval_us"] = 100;  // typo'd field
  doc["traffic"] = std::move(traffic);
  try {
    (void)ServeConfig::from_json(doc);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("traffic.requests_interval_us"),
              std::string::npos);
  }
}

TEST(ServeConfig, TypeMismatchesNameTheField) {
  Json doc = minimal_doc();
  doc["max_active_reqs"] = std::string("lots");
  try {
    (void)ServeConfig::from_json(doc);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("max_active_reqs"),
              std::string::npos);
  }
}

TEST(ServeConfig, RangeChecksReject) {
  const auto rejects = [](const char* field, Json value) {
    Json doc = Json::object();
    doc["schema"] = std::string(kServeConfigSchema);
    doc[field] = std::move(value);
    EXPECT_THROW((void)ServeConfig::from_json(doc), Error) << field;
  };
  rejects("scheduler_type", Json(std::string("round-robin")));
  rejects("max_active_reqs", Json(std::int64_t{0}));
  rejects("max_batch_size", Json(std::int64_t{0}));
  rejects("virtual_workers", Json(std::int64_t{0}));
  rejects("scale", Json(std::int64_t{0}));
  rejects("exec_mode", Json(std::string("quantum")));
  rejects("max_active_reqs", Json(std::int64_t{-3}));
}

TEST(ServeConfig, TrafficRangeChecksReject) {
  const auto rejects = [](const char* field, Json value) {
    Json doc = Json::object();
    doc["schema"] = std::string(kServeConfigSchema);
    Json traffic = Json::object();
    traffic[field] = std::move(value);
    doc["traffic"] = std::move(traffic);
    EXPECT_THROW((void)ServeConfig::from_json(doc), Error) << field;
  };
  rejects("arrival", Json(std::string("uniform")));
  rejects("request_interval_us", Json(std::int64_t{0}));
  rejects("burst_factor", Json(0.5));
  rejects("burst_fraction", Json(1.5));
  rejects("burst_period_us", Json(std::int64_t{0}));
  rejects("datasets", Json::array());
  rejects("algos", Json::array());
  rejects("tenants", Json(std::int64_t{0}));
  rejects("datasets", Json(std::string("twitter")));  // not an array
}

}  // namespace
}  // namespace cosparse::serve
