// Serving-daemon longevity soak (opt-in: -DCOSPARSE_SOAK=ON, `ctest -L
// soak`). A 10k-request replay through the full pipeline — trace,
// DES schedule, real batched execution, report — asserting the
// accounting invariants hold at scale: every request reaches a terminal
// status, queue samples advance monotonically in virtual time and never
// breach admission, cumulative cache counters reconcile, and a second
// identical replay produces byte-identical functional results.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json.h"
#include "obs/report.h"
#include "serve/server.h"

namespace cosparse::serve {
namespace {

ServeConfig soak_config() {
  ServeConfig cfg;
  cfg.scheduler_type = "same-dataset-batch";
  cfg.max_active_reqs = 48;
  cfg.max_batch_size = 16;
  cfg.virtual_workers = 4;
  cfg.exec_mode = "native";
  cfg.scale = 512;
  cfg.traffic.arrival = "bursty";
  cfg.traffic.request_interval_us = 120;
  cfg.traffic.request_total_cnt = 10000;
  cfg.traffic.seed = 99;
  cfg.traffic.datasets = {"twitter", "youtube"};
  cfg.traffic.algos = {"bfs"};  // keep 10k executions tractable
  return cfg;
}

TEST(ServeSoak, TenThousandRequestsStayAccounted) {
  const ServeConfig cfg = soak_config();
  ServerOptions opts;
  opts.serve_threads = 4;
  Server server(cfg, opts);
  const Json report = server.replay();
  const Schedule& s = server.schedule();

  // Terminal-status accounting over all 10k requests.
  ASSERT_EQ(s.responses.size(), 10000u);
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  for (const QueryResponse& r : s.responses) {
    switch (r.status) {
      case Status::kOk:
        ++ok;
        ASSERT_FALSE(r.digest.empty()) << "id " << r.id;
        break;
      case Status::kRejected: ++rejected; break;
      case Status::kError: FAIL() << "unexpected error, id " << r.id;
    }
  }
  EXPECT_EQ(ok, s.stats.admitted);
  EXPECT_EQ(rejected, s.stats.rejected);
  EXPECT_EQ(ok + rejected, 10000u);
  EXPECT_GT(ok, 0u);

  // Queue samples: virtual time monotone, admission bound never breached,
  // and the queue fully drains by trace end.
  ASSERT_FALSE(s.queue_depth.empty());
  std::uint64_t prev_t = 0;
  for (const QueueSample& q : s.queue_depth) {
    ASSERT_GE(q.t_us, prev_t);
    ASSERT_LE(q.waiting + q.running, cfg.max_active_reqs);
    prev_t = q.t_us;
  }
  EXPECT_EQ(s.queue_depth.back().waiting, 0u);
  EXPECT_EQ(s.queue_depth.back().running, 0u);

  // Cumulative counters reconcile: every batch either hit or missed the
  // host cache, and the virtual model saw the same batch count.
  const CacheStats& host = server.cache_stats();
  EXPECT_EQ(host.hits + host.misses, s.batches.size());
  EXPECT_EQ(s.stats.cache_hits + s.stats.cache_misses, s.batches.size());

  // The whole 10k-request run replays byte-identically.
  Server again(cfg, opts);
  const Json report2 = again.replay();
  EXPECT_EQ(obs::functional_subset(report).dump(),
            obs::functional_subset(report2).dump());
}

}  // namespace
}  // namespace cosparse::serve
