// Property harness for the serving scheduler and cache (~200 seeds).
//
// Invariants, per DESIGN.md §16 and the scheduler/cache header contracts:
//   1. active (waiting + running) never exceeds max_active_reqs;
//   2. batches never exceed max_batch_size and hold one dataset each;
//   3. every admitted request lands in exactly one batch, every response
//      has a definite status, and virtual times are ordered;
//   4. fcfs never starves: dispatch order equals arrival order among
//      admitted requests (a bounded-overtaking zero bound);
//   5. same-dataset-batch never starves either: the oldest waiter always
//      drives dataset selection, so every admitted request is dispatched
//      by trace end;
//   6. the cache never evicts a dataset with in-flight leases (checked
//      against randomized acquire/release interleavings);
//   7. batched execution is bit-identical to running each request alone
//      (checked on a subsample of seeds — execution is the slow part).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace cosparse::serve {
namespace {

constexpr std::uint64_t kSeeds = 200;

ServeConfig config_for_seed(std::uint64_t seed) {
  ServeConfig cfg;
  // Vary the knobs with the seed so the sweep covers the policy space.
  cfg.scheduler_type =
      seed % 2 == 0 ? "same-dataset-batch" : "fcfs";
  cfg.max_active_reqs = 2 + static_cast<std::uint32_t>(seed % 7);
  cfg.max_batch_size = 1 + static_cast<std::uint32_t>(seed % 5);
  cfg.virtual_workers = 1 + static_cast<std::uint32_t>(seed % 3);
  cfg.scale = 2048;
  cfg.traffic.arrival = seed % 3 == 0 ? "bursty" : "poisson";
  cfg.traffic.request_interval_us = 50 + 40 * (seed % 4);
  cfg.traffic.request_total_cnt = 40;
  cfg.traffic.seed = seed;
  cfg.traffic.datasets = {"twitter", "vsp", "youtube"};
  cfg.traffic.algos = {"bfs", "sssp", "pagerank", "cf"};
  return cfg;
}

TEST(ServeProperties, ScheduleInvariantsAcross200Seeds) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const ServeConfig cfg = config_for_seed(seed);
    const auto trace = generate_trace(cfg.traffic);
    const Schedule s = build_schedule(cfg, trace);

    // (1) admission bound, at every sampled instant and in the stats.
    for (const QueueSample& q : s.queue_depth)
      ASSERT_LE(q.waiting + q.running, cfg.max_active_reqs) << "seed " << seed;
    ASSERT_LE(s.stats.peak_active, cfg.max_active_reqs) << "seed " << seed;

    // (2) batch shape.
    std::map<std::size_t, std::uint32_t> batch_of;
    for (const BatchPlan& b : s.batches) {
      ASSERT_GE(b.request_indices.size(), 1u) << "seed " << seed;
      ASSERT_LE(b.request_indices.size(), cfg.max_batch_size)
          << "seed " << seed;
      ASSERT_LT(b.worker, cfg.virtual_workers) << "seed " << seed;
      ASSERT_GT(b.finish_us, b.dispatch_us) << "seed " << seed;
      for (const std::size_t idx : b.request_indices) {
        ASSERT_EQ(trace[idx].dataset, b.dataset) << "seed " << seed;
        ASSERT_TRUE(batch_of.emplace(idx, b.id).second)
            << "request in two batches, seed " << seed;
      }
    }

    // (3) status partition + time ordering + batch membership.
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errored = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const QueryResponse& r = s.responses[i];
      ASSERT_EQ(r.id, trace[i].id) << "seed " << seed;
      switch (r.status) {
        case Status::kOk: {
          ++admitted;
          ASSERT_GE(r.dispatch_us, trace[i].arrival_us) << "seed " << seed;
          ASSERT_GT(r.finish_us, r.dispatch_us) << "seed " << seed;
          const auto it = batch_of.find(i);
          ASSERT_NE(it, batch_of.end()) << "admitted but unbatched, seed "
                                        << seed;
          ASSERT_EQ(it->second, r.batch) << "seed " << seed;
          break;
        }
        case Status::kRejected:
          ++rejected;
          ASSERT_EQ(batch_of.count(i), 0u) << "seed " << seed;
          break;
        case Status::kError:
          ++errored;
          ASSERT_EQ(batch_of.count(i), 0u) << "seed " << seed;
          break;
      }
    }
    ASSERT_EQ(admitted, s.stats.admitted) << "seed " << seed;
    ASSERT_EQ(rejected, s.stats.rejected) << "seed " << seed;
    ASSERT_EQ(errored, s.stats.errored) << "seed " << seed;
    ASSERT_EQ(admitted, batch_of.size()) << "seed " << seed;

    // (4)/(5) starvation freedom: every admitted request is in a batch
    // (checked above), and under fcfs dispatch order equals arrival order.
    if (cfg.scheduler_type == "fcfs") {
      std::size_t prev_idx = 0;
      bool first = true;
      for (const BatchPlan& b : s.batches) {
        for (const std::size_t idx : b.request_indices) {
          if (!first)
            ASSERT_GT(idx, prev_idx) << "fcfs overtaking, seed " << seed;
          prev_idx = idx;
          first = false;
        }
      }
    }
  }
}

TEST(ServeProperties, ScheduleIsBytePureAcross200Seeds) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const ServeConfig cfg = config_for_seed(seed);
    const auto trace = generate_trace(cfg.traffic);
    ASSERT_EQ(schedule_json(build_schedule(cfg, trace)).dump(),
              schedule_json(build_schedule(cfg, trace)).dump())
        << "seed " << seed;
  }
}

TEST(ServeProperties, CacheNeverEvictsPinnedEntries) {
  // Randomized acquire/release interleavings against a budget that fits
  // roughly one dataset: any eviction of a leased entry would invalidate
  // its graph reference, which the post-release read would trip over
  // (and ASan would catch).
  sparse::DatasetRegistry reg;
  const std::vector<std::string> names = {"twitter", "vsp", "youtube"};
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const std::uint64_t budget =
        MatrixCache::graph_bytes(reg.load("twitter", 128, 0)) + 1;
    MatrixCache cache(&reg, budget, 128, 0);
    Rng rng(seed);
    std::vector<std::pair<std::string, MatrixCache::Lease>> held;
    for (int step = 0; step < 40; ++step) {
      if (held.size() < 3 && (held.empty() || rng.next_below(2) == 0)) {
        const std::string& name = names[rng.next_below(names.size())];
        held.emplace_back(name, cache.acquire(name));
      } else {
        held.erase(held.begin() +
                   static_cast<std::ptrdiff_t>(rng.next_below(held.size())));
      }
      for (const auto& [name, lease] : held) {
        ASSERT_TRUE(cache.resident(name)) << "seed " << seed;
        ASSERT_GT(lease.graph().num_vertices(), 0u) << "seed " << seed;
      }
      ASSERT_LE(cache.stats().bytes_resident,
                budget + cache.stats().over_budget_loads * budget * 4)
          << "seed " << seed;
    }
  }
}

// (7) Batched execution must be bit-identical to running each request
// alone. Execution dominates runtime, so sample every 25th seed (8 full
// servers, each replayed twice).
TEST(ServeProperties, BatchedExecutionMatchesAloneExecution) {
  for (std::uint64_t seed = 25; seed <= kSeeds; seed += 25) {
    ServeConfig cfg = config_for_seed(seed);
    cfg.scheduler_type = "same-dataset-batch";
    cfg.scale = 128;  // vsp is dense: large scales overflow the stand-in
    cfg.max_batch_size = 4;
    // Pin the queueing knobs so coalescing actually happens: a single slow
    // virtual worker plus a dense arrival stream guarantees a backlog of
    // same-dataset requests for the scheduler to merge.
    cfg.max_active_reqs = 12;
    cfg.virtual_workers = 1;
    cfg.traffic.request_total_cnt = 12;
    cfg.traffic.request_interval_us = 50;
    Server batched(cfg);
    (void)batched.replay();

    ServeConfig alone_cfg = cfg;
    alone_cfg.scheduler_type = "fcfs";  // one request per engine instance
    alone_cfg.max_batch_size = 1;
    Server alone(alone_cfg);
    (void)alone.replay();

    // Compare per-request digests by id for requests both runs executed
    // (admission differs between the policies; results never do).
    std::map<std::uint64_t, std::string> alone_digests;
    for (const QueryResponse& r : alone.schedule().responses)
      if (r.status == Status::kOk) alone_digests[r.id] = r.digest;
    bool batching_happened = false;
    std::size_t compared = 0;
    for (const BatchPlan& b : batched.schedule().batches)
      batching_happened |= b.request_indices.size() > 1;
    for (const QueryResponse& r : batched.schedule().responses) {
      if (r.status != Status::kOk) continue;
      const auto it = alone_digests.find(r.id);
      if (it == alone_digests.end()) continue;
      ++compared;
      ASSERT_EQ(r.digest, it->second)
          << "seed " << seed << " request " << r.id;
    }
    ASSERT_GT(compared, 0u) << "seed " << seed;
    ASSERT_TRUE(batching_happened) << "seed " << seed
                                   << ": trace never coalesced";
  }
}

}  // namespace
}  // namespace cosparse::serve
