// Call-graph tests: definition detection across C++ declarator shapes,
// call-site extraction, and signal-handler root discovery — the
// machinery the signal_safety walk is built on.
#include "analyze/callgraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace cosparse::analyze {
namespace {

bool has_fn(const CallGraph& g, const std::string& name) {
  return g.find(name) != nullptr;
}

bool calls(const CallGraph& g, const std::string& from,
           const std::string& to) {
  const FunctionDef* def = g.find(from);
  if (def == nullptr) return false;
  const auto cs = g.calls_in(*def);
  return std::any_of(cs.begin(), cs.end(),
                     [&](const CallSite& c) { return c.name == to; });
}

CallGraph build_one(const SourceFile& f) { return CallGraph::build({&f}); }

TEST(CallGraph, DetectsPlainAndQualifiedDefinitions) {
  const SourceFile f = scan_source("x.cpp",
                                   "void helper(int a) { work(a); }\n"
                                   "int Engine::run() const noexcept {\n"
                                   "  helper(1);\n"
                                   "  return 0;\n"
                                   "}\n");
  const CallGraph g = build_one(f);
  ASSERT_TRUE(has_fn(g, "helper"));
  ASSERT_TRUE(has_fn(g, "run"));
  EXPECT_EQ(g.find("run")->qualified, "Engine::run");
  EXPECT_TRUE(calls(g, "run", "helper"));
  EXPECT_TRUE(calls(g, "helper", "work"));
}

TEST(CallGraph, TrailingReturnAndCtorInitList) {
  const SourceFile f = scan_source(
      "x.cpp",
      "auto make() -> int { return seed(); }\n"
      "Widget::Widget(int n) : size_(n), data_(alloc(n)) { init(); }\n");
  const CallGraph g = build_one(f);
  ASSERT_TRUE(has_fn(g, "make"));
  EXPECT_TRUE(calls(g, "make", "seed"));
  ASSERT_TRUE(has_fn(g, "Widget"));
  EXPECT_TRUE(calls(g, "Widget", "init"));
}

TEST(CallGraph, ControlKeywordsAndDeclarationsAreNotDefs) {
  const SourceFile f = scan_source("x.cpp",
                                   "void decl_only(int);\n"
                                   "void body() {\n"
                                   "  if (x) { y(); }\n"
                                   "  while (p()) {}\n"
                                   "}\n");
  const CallGraph g = build_one(f);
  EXPECT_FALSE(has_fn(g, "decl_only"));  // no body to walk
  EXPECT_FALSE(has_fn(g, "if"));
  EXPECT_FALSE(has_fn(g, "while"));
  ASSERT_TRUE(has_fn(g, "body"));
  EXPECT_TRUE(calls(g, "body", "y"));
  EXPECT_TRUE(calls(g, "body", "p"));
}

TEST(CallGraph, NewAndDeleteAreOperatorCalls) {
  const SourceFile f =
      scan_source("x.cpp", "void alloc_it() { auto* p = new Obj; delete p; }");
  const CallGraph g = build_one(f);
  const auto cs = g.calls_in(*g.find("alloc_it"));
  EXPECT_TRUE(std::any_of(cs.begin(), cs.end(), [](const CallSite& c) {
    return c.name == "operator new";
  }));
  EXPECT_TRUE(std::any_of(cs.begin(), cs.end(), [](const CallSite& c) {
    return c.name == "operator delete";
  }));
}

TEST(CallGraph, RootsFromSignalCall) {
  const SourceFile f = scan_source(
      "x.cpp",
      "void install() { std::signal(SIGPROF, &my_handler); }\n"
      "void defaulted() { std::signal(SIGINT, SIG_DFL); }\n");
  const CallGraph g = build_one(f);
  const auto& roots = g.handler_roots();
  EXPECT_NE(std::find(roots.begin(), roots.end(), "my_handler"), roots.end());
  // SIG_DFL / SIG_IGN constants are not handler functions.
  EXPECT_EQ(std::find(roots.begin(), roots.end(), "SIG_DFL"), roots.end());
}

TEST(CallGraph, RootsFromSigactionAssignment) {
  const SourceFile f = scan_source(
      "x.cpp",
      "void install() {\n"
      "  struct sigaction sa {};\n"
      "  sa.sa_handler = &tick_handler;\n"
      "  sa.sa_sigaction = info_handler;\n"
      "  sigaction(SIGPROF, &sa, nullptr);\n"
      "}\n");
  const CallGraph g = build_one(f);
  const auto& roots = g.handler_roots();
  EXPECT_NE(std::find(roots.begin(), roots.end(), "tick_handler"), roots.end());
  EXPECT_NE(std::find(roots.begin(), roots.end(), "info_handler"), roots.end());
}

TEST(CallGraph, MemberCallsAreMarked) {
  const SourceFile f =
      scan_source("x.cpp", "void go() { obj.load(); free_fn(); }");
  const CallGraph g = build_one(f);
  const auto cs = g.calls_in(*g.find("go"));
  for (const CallSite& c : cs) {
    if (c.name == "load") EXPECT_TRUE(c.member);
    if (c.name == "free_fn") EXPECT_FALSE(c.member);
  }
}

}  // namespace
}  // namespace cosparse::analyze
