// Fixture: fused-multiply-add hazards in a kernel header — one
// std::fma library call, one builtin, one AVX2 FMA intrinsic name.
#pragma once

#include <cmath>

namespace fixture {

inline double dot_fused(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc = std::fma(a[i], b[i], acc);
  return acc;
}

inline double dot_builtin(double x, double y, double z) {
  return __builtin_fma(x, y, z);
}

// Not compiled on the baseline target; the token alone must trip the pass.
#if defined(__AVX2__) && defined(__FMA__)
inline __m256d axpy4(__m256d a, __m256d x, __m256d y) {
  return _mm256_fmadd_pd(a, x, y);
}
#endif

}  // namespace fixture
