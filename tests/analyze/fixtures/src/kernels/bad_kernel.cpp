// Fixture: a kernel TU whose compile-db entry (crafted by
// test_code_lint.cpp) lacks -ffp-contract=off — the source itself is
// hazard-free; the defect lives entirely in the flags.
namespace fixture {

double sum(const double* v, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += v[i];
  return acc;
}

}  // namespace fixture
