// Fixture: horizontal-add intrinsics in a native SIMD source. Its
// compile-db entry additionally carries -ffast-math (fp.fast-math).
namespace fixture {

#if defined(__AVX2__)
double reduce(__m256d acc) {
  const __m256d h = _mm256_hadd_pd(acc, acc);  // reassociates the sum
  return h[0] + h[2];
}
#endif

// The experimental-SIMD spelling must trip the same check.
template <typename Simd>
double reduce_generic(const Simd& v) {
  return reduce_add(v);
}

}  // namespace fixture
