// Fixture: a SIGPROF handler full of async-signal-unsafe constructs.
// Every hazard class of the signal_safety pass appears at least once,
// both directly in the handler and transitively through helpers.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

namespace fixture {

std::mutex g_mu;

// Transitive hazard: reached from the handler two hops down.
void format_sample(int n) {
  std::string label = "sample " + std::to_string(n);  // allocates
  std::printf("%s\n", label.c_str());
}

void record_sample(int signo) {
  std::lock_guard<std::mutex> lock(g_mu);  // lock in handler path
  format_sample(signo);
}

extern "C" void bad_sigprof_handler(int signo) {
  std::cout << "tick " << signo << "\n";     // iostream in handler
  void* scratch = std::malloc(64);           // allocating call
  int* boxed = new int(signo);               // operator new
  record_sample(*boxed);
  delete boxed;                              // operator delete
  std::free(scratch);
}

void install_via_signal() { std::signal(SIGPROF, &bad_sigprof_handler); }

void install_via_sigaction() {
  struct sigaction sa {};
  sa.sa_handler = &bad_sigprof_handler;
  sigaction(SIGPROF, &sa, nullptr);
}

}  // namespace fixture
