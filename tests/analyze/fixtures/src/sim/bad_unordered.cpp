// Fixture: hash-order iteration and pointer-to-integer casts — the
// address-dependent hazard classes of the determinism pass.
#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

std::unordered_map<std::string, int> g_counts;

int total_range_for() {
  int sum = 0;
  for (const auto& [key, n] : g_counts) sum += n;  // hash-order visit
  return sum;
}

int first_explicit_iter() {
  auto it = g_counts.begin();  // hash-order first element
  return it == g_counts.end() ? 0 : it->second;
}

std::uint64_t key_of(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);  // host address as data
}

unsigned long key_c_cast(const void* p) {
  return (uintptr_t)p;  // same hazard, C-cast spelling
}

}  // namespace fixture
