// Fixture: nondeterministic value sources in a simulator source —
// libc rand(), std::random_device entropy, and wall-clock reads that
// feed computed state (no allow annotation anywhere in this file).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int jitter() { return std::rand() % 7; }

unsigned seed_from_entropy() {
  std::random_device rd;
  return rd();
}

long stamp() { return std::time(nullptr); }

double elapsed_ms() {
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(t0.time_since_epoch().count());
}

}  // namespace fixture
