// Fixture: the escape hatch. Both annotation placements (trailing and
// line-above) must downgrade the wallclock finding to an info with id
// "determinism.allowed"; the unannotated read below must still flag.
#include <chrono>

namespace fixture {

double telemetry_trailing() {
  const auto t0 = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
  return static_cast<double>(t0.time_since_epoch().count());
}

double telemetry_line_above() {
  // cosparse-lint: allow(determinism)
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(t0.time_since_epoch().count());
}

double unannotated() {
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(t0.time_since_epoch().count());
}

}  // namespace fixture
