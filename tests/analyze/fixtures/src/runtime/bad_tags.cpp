// Fixture: phase tags and region labels that are not in the canonical
// registries (src/analyze/registry.cpp). A canonical tag and label are
// mixed in to prove the pass does not over-fire.
namespace fixture {

struct PhaseScope {
  explicit PhaseScope(const char*) {}
};

void run(auto& map, auto& machine) {
  PhaseScope ok("engine.spmv");          // canonical: silent
  PhaseScope typo("engine.bogus");       // unregistered tag
  map.of(0, 64, "vector.dense");         // canonical: silent
  map.of(64, 64, "scratch.tmp");         // unregistered label
  machine.alloc(128, "tmp.region");      // unregistered label
}

}  // namespace fixture
