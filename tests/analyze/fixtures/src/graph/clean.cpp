// Fixture: a hazard-free file in a scanned directory — the passes must
// stay silent here (ordered containers, seeded Rng-style interfaces,
// canonical tags, no clocks).
#include <map>
#include <string>
#include <vector>

namespace fixture {

struct PhaseScope {
  explicit PhaseScope(const char*) {}
};

int frontier_sum(const std::map<std::string, int>& ranks) {
  const PhaseScope phase("graph.bfs");
  int sum = 0;
  for (const auto& [key, n] : ranks) sum += n;  // ordered: deterministic
  return sum;
}

std::vector<int> doubled(const std::vector<int>& v) {
  std::vector<int> out;
  out.reserve(v.size());
  for (int x : v) out.push_back(2 * x);
  return out;
}

}  // namespace fixture
