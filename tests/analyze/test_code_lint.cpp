// End-to-end code-lint tests over the fixture tree
// (tests/analyze/fixtures): every planted defect must be detected by
// its pass with a file:line location (zero false negatives), the clean
// fixture must stay silent, the escape hatch must downgrade-not-drop,
// and the compile-db flag checks must fire from a crafted database.
#include "analyze/code_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "verify/baseline.h"

namespace cosparse::analyze {
namespace {

using verify::Finding;
using verify::LintReport;
using verify::Severity;

const LintReport& fixture_report() {
  static const LintReport report =
      lint_code({COSPARSE_TEST_FIXTURES, ""});
  return report;
}

/// Findings with `id` anchored in `file` — "file:line", or bare "file"
/// for whole-file findings (compile-db flag checks).
std::vector<const Finding*> at(const LintReport& r, const std::string& file,
                               const std::string& id) {
  std::vector<const Finding*> out;
  for (const Finding& f : r.findings()) {
    if (f.id == id && (f.location.name == file ||
                       f.location.name.rfind(file + ":", 0) == 0))
      out.push_back(&f);
  }
  return out;
}

bool has_line_anchor(const Finding& f) {
  const std::size_t colon = f.location.name.rfind(':');
  if (colon == std::string::npos || colon + 1 >= f.location.name.size())
    return false;
  return std::all_of(f.location.name.begin() +
                         static_cast<std::ptrdiff_t>(colon) + 1,
                     f.location.name.end(), [](char c) {
                       return std::isdigit(static_cast<unsigned char>(c)) != 0;
                     });
}

struct Expected {
  const char* file;
  const char* id;
  int min_count;
};

// The zero-false-negative table: one row per planted defect class.
// 4 classes (signal_safety, fp_exactness, determinism, phase_hygiene),
// 15 cases.
const Expected kExpected[] = {
    // class 1: signal safety (direct + transitive hazards)
    {"src/obs/bad_handler.cpp", "signal.unsafe-io", 1},      // std::cout
    {"src/obs/bad_handler.cpp", "signal.unsafe-call", 4},    // malloc/free/...
    {"src/obs/bad_handler.cpp", "signal.unsafe-alloc", 2},   // new + delete
    {"src/obs/bad_handler.cpp", "signal.unsafe-lock", 1},    // lock_guard
    {"src/obs/bad_handler.cpp", "signal.unsafe-type", 1},    // std::string
    // class 2: FP exactness
    {"src/kernels/bad_fma.h", "fp.fma-call", 2},          // fma, __builtin_fma
    {"src/kernels/bad_fma.h", "fp.fma-intrinsic", 1},     // _mm256_fmadd_pd
    {"src/native/bad_hadd.cpp", "fp.horizontal-add", 2},  // hadd, reduce_add
    // class 3: determinism
    {"src/sim/bad_random.cpp", "determinism.rand", 1},
    {"src/sim/bad_random.cpp", "determinism.random-device", 1},
    {"src/sim/bad_random.cpp", "determinism.wallclock", 2},  // time + now
    {"src/sim/bad_unordered.cpp", "determinism.unordered-iteration", 2},
    {"src/sim/bad_unordered.cpp", "determinism.pointer-to-int", 2},
    // class 4: phase/label hygiene
    {"src/runtime/bad_tags.cpp", "phase.unregistered-tag", 1},
    {"src/runtime/bad_tags.cpp", "phase.unregistered-label", 2},
};

TEST(CodeLint, EveryPlantedDefectIsDetectedWithFileLine) {
  const LintReport& r = fixture_report();
  for (const Expected& e : kExpected) {
    const auto found = at(r, e.file, e.id);
    EXPECT_GE(static_cast<int>(found.size()), e.min_count)
        << e.id << " in " << e.file;
    for (const Finding* f : found) {
      EXPECT_EQ(f->severity, Severity::kError) << e.id;
      EXPECT_EQ(f->location.kind, "source") << e.id;
      EXPECT_TRUE(has_line_anchor(*f)) << f->location.name;
    }
  }
}

TEST(CodeLint, CanonicalTagsAndLabelsDoNotOverFire) {
  const LintReport& r = fixture_report();
  // bad_tags.cpp mixes canonical "engine.spmv" / "vector.dense" with the
  // planted typos: exactly 1 tag + 2 label findings, not 2 + 3.
  EXPECT_EQ(at(r, "src/runtime/bad_tags.cpp", "phase.unregistered-tag").size(),
            1u);
  EXPECT_EQ(
      at(r, "src/runtime/bad_tags.cpp", "phase.unregistered-label").size(),
      2u);
}

TEST(CodeLint, CleanFixtureStaysSilent) {
  const LintReport& r = fixture_report();
  for (const Finding& f : r.findings()) {
    EXPECT_EQ(f.location.name.rfind("src/graph/clean.cpp", 0),
              std::string::npos)
        << f.id << " @" << f.location.name;
  }
}

TEST(CodeLint, EscapeHatchDowngradesButKeepsVisible) {
  const LintReport& r = fixture_report();
  // Both annotation placements waive; the unannotated read still gates.
  const auto allowed =
      at(r, "src/runtime/allowed_clock.cpp", "determinism.allowed");
  ASSERT_EQ(allowed.size(), 2u);
  for (const Finding* f : allowed) {
    EXPECT_EQ(f->severity, Severity::kInfo);
    EXPECT_NE(f->message.find("allow(determinism)"), std::string::npos);
  }
  EXPECT_EQ(
      at(r, "src/runtime/allowed_clock.cpp", "determinism.wallclock").size(),
      1u);
}

TEST(CodeLint, HandlerRootIsReportedAndWalkIsTransitive) {
  const LintReport& r = fixture_report();
  const auto roots = at(r, "src/obs/bad_handler.cpp", "signal.root");
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->severity, Severity::kInfo);
  // The std::string hazard lives two calls below the handler; its
  // message must carry the full path for debuggability.
  const auto types = at(r, "src/obs/bad_handler.cpp", "signal.unsafe-type");
  ASSERT_EQ(types.size(), 1u);
  EXPECT_NE(types[0]->message.find("bad_sigprof_handler -> record_sample -> "
                                   "format_sample"),
            std::string::npos);
}

TEST(CodeLint, MissingCompileDbIsAWarningNotAnError) {
  const LintReport& r = fixture_report();
  const auto it = std::find_if(
      r.findings().begin(), r.findings().end(),
      [](const Finding& f) { return f.id == "code.compile-db-missing"; });
  ASSERT_NE(it, r.findings().end());
  EXPECT_EQ(it->severity, Severity::kWarning);
}

TEST(CodeLint, CompileDbFlagChecksFireFromCraftedDatabase) {
  const std::string root = COSPARSE_TEST_FIXTURES;
  const std::string db_path = ::testing::TempDir() + "fixture_ccdb.json";
  {
    std::ofstream out(db_path);
    // bad_kernel.cpp: no -ffp-contract=off → fp.contract-missing.
    // bad_hadd.cpp: has =off but also -ffast-math → fp.fast-math only.
    out << R"([
      {"directory": ")" << root << R"(",
       "file": "src/kernels/bad_kernel.cpp",
       "command": "g++ -O2 -c src/kernels/bad_kernel.cpp"},
      {"directory": ")" << root << R"(",
       "file": "src/native/bad_hadd.cpp",
       "command": "g++ -O2 -ffp-contract=off -ffast-math -c src/native/bad_hadd.cpp"}
    ])";
  }
  const LintReport r = lint_code({root, db_path});
  const auto missing = at(r, "src/kernels/bad_kernel.cpp",
                          "fp.contract-missing");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0]->severity, Severity::kError);
  EXPECT_EQ(at(r, "src/native/bad_hadd.cpp", "fp.fast-math").size(), 1u);
  EXPECT_TRUE(at(r, "src/native/bad_hadd.cpp", "fp.contract-missing").empty());
  // With a database present the missing-db warning must disappear.
  EXPECT_TRUE(std::none_of(
      r.findings().begin(), r.findings().end(),
      [](const Finding& f) { return f.id == "code.compile-db-missing"; }));
}

TEST(CodeLint, BaselineSuppressesCodeFindings) {
  LintReport r = lint_code({COSPARSE_TEST_FIXTURES, ""});
  const std::size_t before = r.errors();
  ASSERT_GT(before, 0u);
  const verify::Baseline b = verify::Baseline::from_json(Json::parse(R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "determinism", "id": "determinism.rand"}]
  })"));
  EXPECT_EQ(b.apply(r), 1u);
  EXPECT_EQ(r.errors(), before - 1);
  EXPECT_EQ(r.suppressed_count(), 1u);
}

TEST(CodeLint, NonexistentRootThrows) {
  EXPECT_THROW(lint_code({"/nonexistent/fixture/root", ""}), Error);
}

}  // namespace
}  // namespace cosparse::analyze
