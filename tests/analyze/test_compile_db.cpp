// compile_commands.json reader tests: both database dialects, exact
// flag-token matching, path resolution, and malformed-entry findings.
#include "analyze/compile_db.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cosparse::analyze {
namespace {

TEST(CompileDb, ParsesCommandForm) {
  const Json doc = Json::parse(R"([
    {"directory": "/repo/build", "file": "../src/kernels/ip.cpp",
     "command": "g++ -O2 -ffp-contract=off -c ../src/kernels/ip.cpp"}
  ])");
  std::vector<verify::Finding> findings;
  const CompileDb db = CompileDb::parse(doc, &findings);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(db.commands().size(), 1u);
  EXPECT_EQ(CompileDb::resolved_file(db.commands()[0]),
            "/repo/src/kernels/ip.cpp");
  EXPECT_TRUE(CompileDb::has_flag(db.commands()[0], "-ffp-contract=off"));
}

TEST(CompileDb, ParsesArgumentsForm) {
  const Json doc = Json::parse(R"([
    {"directory": "/b", "file": "a.cpp",
     "arguments": ["clang++", "-O2", "-ffast-math", "-c", "a.cpp"]}
  ])");
  std::vector<verify::Finding> findings;
  const CompileDb db = CompileDb::parse(doc, &findings);
  ASSERT_EQ(db.commands().size(), 1u);
  EXPECT_TRUE(CompileDb::has_flag(db.commands()[0], "-ffast-math"));
  EXPECT_FALSE(CompileDb::has_flag(db.commands()[0], "-ffp-contract=off"));
}

TEST(CompileDb, FlagMatchIsExactTokenNotSubstring) {
  const CompileCommand cc{"/b", "a.cpp",
                          "g++ -ffp-contract=fast -funsafe-math-optimizations"};
  EXPECT_FALSE(CompileDb::has_flag(cc, "-ffp-contract=off"));
  EXPECT_TRUE(CompileDb::has_flag(cc, "-ffp-contract=fast"));
  EXPECT_FALSE(CompileDb::has_flag(cc, "-funsafe-math"));
}

TEST(CompileDb, ResolvedFileCollapsesDots) {
  const CompileCommand cc{"/repo/build/./sub", "../../src/./x.cpp", "g++"};
  EXPECT_EQ(CompileDb::resolved_file(cc), "/repo/src/x.cpp");
  const CompileCommand abs{"/anything", "/repo/src/y.cpp", "g++"};
  EXPECT_EQ(CompileDb::resolved_file(abs), "/repo/src/y.cpp");
}

TEST(CompileDb, MalformedEntriesBecomeFindings) {
  const Json doc = Json::parse(R"([
    {"directory": "/b", "command": "g++"},
    {"directory": "/b", "file": "ok.cpp", "command": "g++ -c ok.cpp"},
    42
  ])");
  std::vector<verify::Finding> findings;
  const CompileDb db = CompileDb::parse(doc, &findings);
  ASSERT_EQ(db.commands().size(), 1u);  // the good entry survives
  ASSERT_EQ(findings.size(), 2u);
  for (const auto& f : findings) {
    EXPECT_EQ(f.id, "code.compile-db-malformed");
    EXPECT_EQ(f.severity, verify::Severity::kError);
  }
}

TEST(CompileDb, NonArrayRootIsMalformed) {
  std::vector<verify::Finding> findings;
  const CompileDb db = CompileDb::parse(Json::parse(R"({"not": "a db"})"),
                                        &findings);
  EXPECT_TRUE(db.empty());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].id, "code.compile-db-malformed");
}

}  // namespace
}  // namespace cosparse::analyze
