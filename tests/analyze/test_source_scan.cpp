// Tokenizer unit tests: the pass soundness argument (DESIGN.md §15)
// rests on scan_source never mis-lexing identifiers, string literals or
// the annotation comments — these pin that contract down.
#include "analyze/source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace cosparse::analyze {
namespace {

std::vector<std::string> idents(const SourceFile& f) {
  std::vector<std::string> out;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kIdent) out.push_back(t.text);
  return out;
}

std::vector<std::string> strings(const SourceFile& f) {
  std::vector<std::string> out;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kString) out.push_back(t.text);
  return out;
}

TEST(SourceScan, IdentifiersStringsAndLines) {
  const SourceFile f = scan_source("x.cpp", "int main() {\n  run(\"a.b\");\n}");
  const auto ids = idents(f);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "main"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "run"), ids.end());
  ASSERT_EQ(strings(f), std::vector<std::string>{"a.b"});
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kString) EXPECT_EQ(t.line, 2);
}

TEST(SourceScan, CommentsEmitNoTokens) {
  const SourceFile f = scan_source(
      "x.cpp", "// rand() in a comment\n/* time() too\n over lines */\nint x;");
  const auto ids = idents(f);
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "rand"), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "time"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "x"), ids.end());
}

TEST(SourceScan, PreprocessorLinesAreConsumed) {
  const SourceFile f = scan_source(
      "x.cpp", "#define BAD rand() \\\n  + rand()\n#include <cstdlib>\nint y;");
  const auto ids = idents(f);
  // Both the directive and its continuation line are skipped.
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "rand"), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "cstdlib"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "y"), ids.end());
}

TEST(SourceScan, RawStringsDoNotLeakTokens) {
  const SourceFile f = scan_source(
      "x.cpp", "auto s = R\"(rand() \" unbalanced)\";\nint z;");
  const auto ids = idents(f);
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "rand"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "z"), ids.end());
  ASSERT_EQ(strings(f).size(), 1u);
  EXPECT_EQ(strings(f)[0], "rand() \" unbalanced");
}

TEST(SourceScan, StringEscapesAndCharLiterals) {
  const SourceFile f =
      scan_source("x.cpp", "auto s = \"q\\\"uoted\"; char c = '\"';\nint w;");
  ASSERT_EQ(strings(f).size(), 1u);
  EXPECT_EQ(strings(f)[0], "q\\\"uoted");
  // The char literal's quote must not open a string that swallows `w`.
  const auto ids = idents(f);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "w"), ids.end());
}

TEST(SourceScan, QualifiedAndMemberPunctsAreJoined) {
  const SourceFile f = scan_source("x.cpp", "std::chrono::x; p->y; a.z;");
  int sep = 0;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kPunct && (t.text == "::" || t.text == "->")) ++sep;
  EXPECT_EQ(sep, 3);  // two `::`, one `->`
}

TEST(SourceScan, AllowAnnotationCoversItsLineAndTheNext) {
  const SourceFile f = scan_source("x.cpp",
                                   "int a;\n"
                                   "int b;  // cosparse-lint: allow(determinism)\n"
                                   "int c;\n"
                                   "int d;\n");
  EXPECT_FALSE(f.allowed("determinism", 1));
  EXPECT_TRUE(f.allowed("determinism", 2));   // trailing, same line
  EXPECT_TRUE(f.allowed("determinism", 3));   // line directly below
  EXPECT_FALSE(f.allowed("determinism", 4));
  EXPECT_FALSE(f.allowed("signal_safety", 2));  // other pass unaffected
}

TEST(SourceScan, AllowAnnotationAcceptsMultiplePasses) {
  const SourceFile f = scan_source(
      "x.cpp", "// cosparse-lint: allow(determinism, phase_hygiene)\nint a;\n");
  EXPECT_TRUE(f.allowed("determinism", 2));
  EXPECT_TRUE(f.allowed("phase_hygiene", 2));
  EXPECT_FALSE(f.allowed("fp_exactness", 2));
}

}  // namespace
}  // namespace cosparse::analyze
