// The self-scan acceptance test: `cosparse-lint code` run over this
// very repository must be clean — no errors, no warnings beyond the
// accepted set — with every legacy telemetry clock read surfaced as a
// waived info finding and the SampleProfiler SIGPROF handler proven
// against the async-signal-safe allowlist. This is the same gate CI
// runs via the cosparse-lint binary; keeping it in ctest means a local
// `ctest` catches a hazard before the push.
#include "analyze/code_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

namespace cosparse::analyze {
namespace {

using verify::Finding;
using verify::LintReport;
using verify::Severity;

const LintReport& self_report() {
  static const LintReport report = [] {
    const std::string db =
        std::string(COSPARSE_BINARY_ROOT) + "/compile_commands.json";
    return lint_code({COSPARSE_SOURCE_ROOT,
                      std::filesystem::exists(db) ? db : std::string()});
  }();
  return report;
}

TEST(SelfScan, RepositoryIsCleanUnderStrictGate) {
  const LintReport& r = self_report();
  EXPECT_EQ(r.count(Severity::kError), 0u) << r.to_json().dump(2);
  // --strict promotes warnings; the only tolerated warning is the
  // missing-compile-db degradation when the build didn't export one.
  for (const Finding& f : r.findings()) {
    if (f.severity == Severity::kWarning)
      EXPECT_EQ(f.id, "code.compile-db-missing") << f.message;
  }
}

TEST(SelfScan, SigprofHandlerIsWalked) {
  const LintReport& r = self_report();
  const auto it = std::find_if(
      r.findings().begin(), r.findings().end(),
      [](const Finding& f) { return f.id == "signal.root"; });
  ASSERT_NE(it, r.findings().end());
  EXPECT_NE(it->message.find("cosparse_sigprof_handler"), std::string::npos);
  EXPECT_EQ(it->location.name.rfind("src/obs/sampler.cpp:", 0), 0u);
}

TEST(SelfScan, TelemetryClockReadsAreWaivedNotSilent) {
  // The 10 legacy wall-clock sites (sim/machine.cpp, runtime/engine.h,
  // graph/algorithms.cpp) are telemetry-only and bit-neutral; they must
  // appear as explicit allow(...) infos, not vanish.
  const LintReport& r = self_report();
  const auto waived = static_cast<std::size_t>(std::count_if(
      r.findings().begin(), r.findings().end(),
      [](const Finding& f) { return f.id == "determinism.allowed"; }));
  EXPECT_GE(waived, 10u);
}

TEST(SelfScan, KernelTusCarryContractOffWhenDbPresent) {
  const std::string db =
      std::string(COSPARSE_BINARY_ROOT) + "/compile_commands.json";
  if (!std::filesystem::exists(db)) {
    GTEST_SKIP() << "build did not export compile_commands.json";
  }
  const LintReport& r = self_report();
  for (const Finding& f : r.findings()) {
    EXPECT_NE(f.id, "fp.contract-missing") << f.location.name;
    EXPECT_NE(f.id, "fp.fast-math") << f.location.name;
  }
}

}  // namespace
}  // namespace cosparse::analyze
