#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ligra/apps.h"
#include "baselines/ligra/edge_map.h"
#include "sparse/generate.h"

// Reuse the graph-layer textbook references.
#include "../graph/host_reference.h"

namespace cosparse::baselines::ligra {
namespace {

using cosparse::graph::testing::reference_bfs;
using cosparse::graph::testing::reference_pagerank;
using cosparse::graph::testing::reference_sssp;
using sparse::Coo;

TEST(VertexSubset, RepresentationConversionsPreserveMembers) {
  auto s = VertexSubset::from_sparse(10, {1, 4, 7});
  EXPECT_EQ(s.size(), 3u);
  s.to_dense();
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(5));
  s.to_sparse();
  EXPECT_FALSE(s.is_dense());
  EXPECT_EQ(s.sparse_ids(), (std::vector<Index>{1, 4, 7}));
}

TEST(EdgeMap, SparseAndDenseDirectionsAgree) {
  const Coo adj = sparse::uniform_random(500, 500, 6000, 1);
  const LigraGraph g = LigraGraph::build(adj);

  struct CollectF {
    std::vector<std::uint8_t>* seen;
    bool update(Index, Index v, Value) const {
      const bool first = !(*seen)[v];
      (*seen)[v] = 1;
      return first;
    }
    bool update_atomic(Index u, Index v, Value w) const {
      return update(u, v, w);
    }
    bool cond(Index) const { return true; }
  };

  std::vector<std::uint8_t> seen_sparse(500, 0), seen_dense(500, 0);
  auto f1 = VertexSubset::from_sparse(500, {0, 1, 2, 3, 4});
  auto f2 = VertexSubset::from_sparse(500, {0, 1, 2, 3, 4});
  EdgeMapOptions sparse_opts, dense_opts;
  sparse_opts.force_sparse = true;
  sparse_opts.threads = 1;
  dense_opts.force_dense = true;
  dense_opts.threads = 1;
  auto out_s = edge_map(g, f1, CollectF{&seen_sparse}, sparse_opts);
  auto out_d = edge_map(g, f2, CollectF{&seen_dense}, dense_opts);
  EXPECT_EQ(seen_sparse, seen_dense);
  EXPECT_EQ(out_s.size(), out_d.size());
}

TEST(EdgeMap, ThresholdSwitchesDirection) {
  const Coo adj = sparse::uniform_random(1000, 1000, 20000, 2);
  const LigraGraph g = LigraGraph::build(adj);
  struct NopF {
    bool update(Index, Index, Value) const { return false; }
    bool update_atomic(Index, Index, Value) const { return false; }
    bool cond(Index) const { return true; }
  };
  // Tiny frontier: work << |E|/20 -> output stays sparse-built.
  auto small = VertexSubset::single(1000, 0);
  auto out_small = edge_map(g, small, NopF{});
  EXPECT_FALSE(out_small.is_dense());
  // Huge frontier: work > |E|/20 -> dense traversal.
  std::vector<Index> all(1000);
  for (Index v = 0; v < 1000; ++v) all[v] = v;
  auto big = VertexSubset::from_sparse(1000, std::move(all));
  auto out_big = edge_map(g, big, NopF{});
  EXPECT_TRUE(out_big.is_dense());
}

TEST(LigraBfs, MatchesReference) {
  const Coo adj = sparse::power_law(1500, 1500, 18000, 2.2, 3);
  const LigraGraph g = LigraGraph::build(adj);
  const auto got = ligra_bfs(g, 4);
  EXPECT_EQ(got.level, reference_bfs(adj, 4));
}

TEST(LigraBfs, ParentsFormValidTree) {
  const Coo adj = sparse::uniform_random(800, 800, 8000, 4);
  const LigraGraph g = LigraGraph::build(adj);
  const auto got = ligra_bfs(g, 0);
  for (Index v = 0; v < 800; ++v) {
    if (got.level[v] > 0) {
      const auto p = static_cast<Index>(got.parent[v]);
      EXPECT_EQ(got.level[v], got.level[p] + 1) << "vertex " << v;
    }
  }
}

TEST(LigraSssp, MatchesDijkstra) {
  const Coo adj = sparse::uniform_random(1000, 1000, 10000, 5,
                                         sparse::ValueDist::kUniformInt);
  const LigraGraph g = LigraGraph::build(adj);
  const auto got = ligra_sssp(g, 0);
  const auto want = reference_sssp(adj, 0);
  for (Index v = 0; v < 1000; ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(got.dist[v]));
    } else {
      EXPECT_DOUBLE_EQ(got.dist[v], want[v]);
    }
  }
}

TEST(LigraPageRank, MatchesPowerIteration) {
  const Coo adj = sparse::uniform_random(600, 600, 6000, 6);
  const LigraGraph g = LigraGraph::build(adj);
  const auto got = ligra_pagerank(g, 0.85, 0.0, 12);
  const auto want = reference_pagerank(adj, 0.85, 12);
  for (Index v = 0; v < 600; ++v) {
    EXPECT_NEAR(got.rank[v], want[v], 1e-12);
  }
}

TEST(LigraCf, LossDecreases) {
  const Coo adj = sparse::uniform_random(300, 300, 3000, 7,
                                         sparse::ValueDist::kUniform01);
  const LigraGraph g = LigraGraph::build(adj);
  const auto got = ligra_cf(g, 6);
  for (std::size_t i = 1; i < got.loss_per_iteration.size(); ++i) {
    EXPECT_LT(got.loss_per_iteration[i], got.loss_per_iteration[i - 1]);
  }
}

TEST(LigraApps, CostsPopulated) {
  const Coo adj = sparse::uniform_random(400, 400, 4000, 8);
  const LigraGraph g = LigraGraph::build(adj);
  const auto b = ligra_bfs(g, 0);
  EXPECT_GT(b.costs.seconds, 0.0);
  EXPECT_GT(b.costs.joules, 0.0);
  EXPECT_GT(b.costs.iterations, 0u);
}

}  // namespace
}  // namespace cosparse::baselines::ligra
