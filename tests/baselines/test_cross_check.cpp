// Integration cross-checks: the CoSPARSE (simulated) algorithm results
// must agree with the mini-Ligra (native) baseline on the same inputs —
// this is the end-to-end guarantee behind every Fig. 10 comparison.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ligra/apps.h"
#include "graph/algorithms.h"
#include "sparse/datasets.h"
#include "sparse/generate.h"
#include "sparse/graph.h"

namespace cosparse {
namespace {

using baselines::ligra::LigraGraph;
using runtime::Engine;
using sparse::Coo;

struct CrossCheckInputs {
  Coo adj;
  sparse::Graph graph;
  LigraGraph lg;

  explicit CrossCheckInputs(Coo a)
      : adj(a), graph("x", a, true), lg(LigraGraph::build(a)) {}
};

CrossCheckInputs dataset_inputs(const std::string& name, unsigned scale) {
  sparse::DatasetRegistry reg;
  return CrossCheckInputs(reg.load(name, scale).adjacency());
}

TEST(CrossCheck, BfsLevelsAgreeOnTwitterStandIn) {
  const auto in = dataset_inputs("twitter", 64);
  Engine eng(in.adj, sim::SystemConfig::transmuter(2, 8));
  const auto ours = graph::bfs(eng, 0);
  const auto theirs = baselines::ligra::ligra_bfs(in.lg, 0);
  EXPECT_EQ(ours.level, theirs.level);
}

TEST(CrossCheck, BfsLevelsAgreeOnVspStandIn) {
  const auto in = dataset_inputs("vsp", 32);
  Engine eng(in.adj, sim::SystemConfig::transmuter(4, 4));
  const auto ours = graph::bfs(eng, 7);
  const auto theirs = baselines::ligra::ligra_bfs(in.lg, 7);
  EXPECT_EQ(ours.level, theirs.level);
}

TEST(CrossCheck, SsspDistancesAgree) {
  const auto in = CrossCheckInputs(sparse::power_law(
      1500, 1500, 20000, 2.2, 11, sparse::ValueDist::kUniformInt));
  Engine eng(in.adj, sim::SystemConfig::transmuter(2, 8));
  const auto ours = graph::sssp(eng, 3);
  const auto theirs = baselines::ligra::ligra_sssp(in.lg, 3);
  ASSERT_EQ(ours.dist.size(), theirs.dist.size());
  for (std::size_t v = 0; v < ours.dist.size(); ++v) {
    if (std::isinf(theirs.dist[v])) {
      EXPECT_TRUE(std::isinf(ours.dist[v])) << v;
    } else {
      EXPECT_DOUBLE_EQ(ours.dist[v], theirs.dist[v]) << v;
    }
  }
}

TEST(CrossCheck, PageRankAgrees) {
  const auto in = dataset_inputs("youtube", 256);
  Engine eng(in.adj, sim::SystemConfig::transmuter(2, 8));
  graph::PageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  const auto ours = graph::pagerank(eng, in.graph.out_degrees(), opts);
  const auto theirs =
      baselines::ligra::ligra_pagerank(in.lg, 0.85, 0.0, 10);
  ASSERT_EQ(ours.rank.size(), theirs.rank.size());
  for (std::size_t v = 0; v < ours.rank.size(); ++v) {
    EXPECT_NEAR(ours.rank[v], theirs.rank[v], 1e-10) << v;
  }
}

TEST(CrossCheck, CfLatentFactorsAgree) {
  const auto in = CrossCheckInputs(sparse::uniform_random(
      500, 500, 5000, 13, sparse::ValueDist::kUniform01));
  Engine eng(in.adj, sim::SystemConfig::transmuter(2, 8));
  graph::CfOptions opts;
  opts.iterations = 5;
  opts.seed = 21;
  const auto ours = graph::cf(eng, in.adj, opts);
  const auto theirs = baselines::ligra::ligra_cf(in.lg, 5, opts.lambda,
                                                 opts.beta, opts.seed);
  ASSERT_EQ(ours.latent.size(), theirs.latent.size());
  for (std::size_t v = 0; v < ours.latent.size(); ++v) {
    EXPECT_NEAR(ours.latent[v], theirs.latent[v], 1e-9) << v;
  }
}

}  // namespace
}  // namespace cosparse
