#include "baselines/cpu_spmv.h"

#include <gtest/gtest.h>

#include "baselines/gpu_model.h"
#include "baselines/power.h"

#include "common/error.h"
#include "sparse/generate.h"

namespace cosparse::baselines {
namespace {

TEST(CpuSpmv, MatchesNaiveReference) {
  const auto coo = sparse::uniform_random(300, 250, 4000, 1,
                                          sparse::ValueDist::kUniform01);
  const auto m = sparse::coo_to_csr(coo);
  const auto x = sparse::random_dense_vector(250, 2);
  const auto res = cpu_spmv(m, x);
  sparse::DenseVector want(300, 0.0);
  for (const auto& t : coo.triplets()) want[t.row] += t.value * x[t.col];
  for (Index r = 0; r < 300; ++r) EXPECT_NEAR(res.y[r], want[r], 1e-9);
}

TEST(CpuSpmv, SingleAndMultiThreadAgree) {
  const auto coo = sparse::uniform_random(2000, 2000, 30000, 3);
  const auto m = sparse::coo_to_csr(coo);
  const auto x = sparse::random_dense_vector(2000, 4);
  const auto one = cpu_spmv(m, x, 1, 1);
  const auto four = cpu_spmv(m, x, 4, 1);
  EXPECT_EQ(one.y, four.y);
}

TEST(CpuSpmv, TimesAndEnergyPositive) {
  const auto m = sparse::coo_to_csr(sparse::uniform_random(500, 500, 5000, 5));
  const auto x = sparse::random_dense_vector(500, 6);
  const auto res = cpu_spmv(m, x);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_NEAR(res.joules, res.seconds * kCpuI7Watts, 1e-12);
}

TEST(CpuSpmv, DimensionMismatchThrows) {
  const auto m = sparse::coo_to_csr(sparse::uniform_random(10, 10, 20, 7));
  const auto x = sparse::random_dense_vector(5, 8);
  EXPECT_THROW(cpu_spmv(m, x), Error);
}

TEST(GpuModel, TimeAndEnergyPositive) {
  const auto res = gpu_spmv_model(100000, 100000, 2000000);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_NEAR(res.joules, res.seconds * 250.0, 1e-12);
  EXPECT_GE(res.utilization, 0.12);
  EXPECT_LE(res.utilization, 0.71);
}

TEST(GpuModel, MoreWorkTakesLonger) {
  const auto small = gpu_spmv_model(10000, 10000, 100000);
  const auto big = gpu_spmv_model(10000, 10000, 10000000);
  EXPECT_GT(big.seconds, small.seconds);
}

TEST(GpuModel, ShortRowsPinUtilizationLow) {
  // ~2 nnz/row: divergent warps, utilization near the 12% floor.
  const auto sparse_rows = gpu_spmv_model(1000000, 1000000, 2000000);
  EXPECT_NEAR(sparse_rows.utilization, 0.12, 0.02);
  // ~1000 nnz/row: coalesced, near the 71% ceiling.
  const auto dense_rows = gpu_spmv_model(10000, 10000, 10000000);
  EXPECT_GT(dense_rows.utilization, 0.5);
}

}  // namespace
}  // namespace cosparse::baselines
