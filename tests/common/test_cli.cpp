#include "common/cli.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse {
namespace {

CliParser make_parser() {
  CliParser p("prog", "test");
  p.add_flag("verbose", "be loud");
  p.add_option("count", "how many", "10");
  p.add_option("ratio", "a ratio", "0.5");
  p.add_option("name", "a name", "default");
  p.add_option("sizes", "comma list", "1,2,3");
  return p;
}

TEST(Cli, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.integer("count"), 10);
  EXPECT_DOUBLE_EQ(p.real("ratio"), 0.5);
  EXPECT_EQ(p.str("name"), "default");
}

TEST(Cli, SpaceSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "42", "--verbose"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.integer("count"), 42);
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(Cli, EqualsSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--ratio=0.25", "--name=abc"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(p.real("ratio"), 0.25);
  EXPECT_EQ(p.str("name"), "abc");
}

TEST(Cli, IntListParses) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--sizes", "4,8,16"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.int_list("sizes"), (std::vector<std::int64_t>{4, 8, 16}));
}

TEST(Cli, UnknownOptionRejected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(p.parse(3, argv));
}

TEST(Cli, MalformedIntegerThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "abc"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_THROW(p.integer("count"), Error);
}

TEST(Cli, PositionalArgumentsCollected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "file1", "--count", "3", "file2"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"file1", "file2"}));
}

TEST(Cli, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, UnregisteredLookupThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW(p.str("nope"), Error);
}

}  // namespace
}  // namespace cosparse
