#include "common/error.h"

#include <gtest/gtest.h>

namespace cosparse {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(COSPARSE_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(COSPARSE_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsWithLocation) {
  try {
    COSPARSE_CHECK(false);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Check, MessageStreamsArguments) {
  try {
    const int got = 7;
    COSPARSE_CHECK_MSG(got == 8, "expected 8, got " << got);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("expected 8, got 7"),
              std::string::npos);
  }
}

TEST(Check, RequireAliasesCheck) {
  EXPECT_THROW(COSPARSE_REQUIRE(false, "input invalid"), Error);
}

TEST(Error, IsRuntimeError) {
  // Callers can catch the standard hierarchy.
  try {
    throw Error("boom");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

}  // namespace
}  // namespace cosparse
