#include "common/log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace cosparse::log {
namespace {

/// Redirects the log sink to a local stream and restores stderr plus the
/// previous threshold on scope exit, so tests cannot leak logger state.
class SinkCapture {
 public:
  SinkCapture() : saved_threshold_(threshold()) { set_sink(&out_); }
  ~SinkCapture() {
    set_sink(nullptr);
    set_threshold(saved_threshold_);
  }
  [[nodiscard]] std::string text() const { return out_.str(); }

 private:
  std::ostringstream out_;
  Level saved_threshold_;
};

TEST(Log, WriteFormatsTaggedLine) {
  SinkCapture cap;
  write(Level::kInfo, "hello");
  EXPECT_EQ(cap.text(), "[cosparse INFO ] hello\n");
}

TEST(Log, ThresholdFiltersBelow) {
  SinkCapture cap;
  set_threshold(Level::kWarn);
  debug("dropped");
  info("dropped too");
  warn("kept");
  error("kept", kv("code", 7));
  const std::string text = cap.text();
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("[cosparse WARN ] kept"), std::string::npos);
  EXPECT_NE(text.find("[cosparse ERROR] kept code=7"), std::string::npos);
}

TEST(Log, KvRendersStructuredFields) {
  std::ostringstream os;
  os << kv("from", "SC") << kv("cycles", 42);
  EXPECT_EQ(os.str(), " from=SC cycles=42");
}

TEST(Log, KvQuotesAmbiguousValues) {
  std::ostringstream os;
  os << kv("msg", "two words") << kv("expr", "a=b") << kv("empty", "")
     << kv("esc", "say \"hi\"");
  EXPECT_EQ(os.str(),
            " msg=\"two words\" expr=\"a=b\" empty=\"\""
            " esc=\"say \\\"hi\\\"\"");
}

TEST(Log, ParseLevelAcceptsKnownNamesCaseInsensitive) {
  EXPECT_EQ(parse_level("debug"), Level::kDebug);
  EXPECT_EQ(parse_level("INFO"), Level::kInfo);
  EXPECT_EQ(parse_level("Warn"), Level::kWarn);
  EXPECT_EQ(parse_level("warning"), Level::kWarn);
  EXPECT_EQ(parse_level("error"), Level::kError);
  EXPECT_EQ(parse_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_level(""), std::nullopt);
}

TEST(Log, ConcurrentWritersNeverInterleaveWithinALine) {
  SinkCapture cap;
  set_threshold(Level::kDebug);
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        info("worker", kv("t", t), kv("i", i));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::istringstream in(cap.text());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    // Every line is exactly one complete message.
    EXPECT_EQ(line.rfind("[cosparse INFO ] worker t=", 0), 0u) << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace cosparse::log
