#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cosparse {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRangeCoversInterval) {
  Rng rng(13);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double(5.0, 9.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    EXPECT_GE(d, 5.0);
    EXPECT_LT(d, 9.0);
  }
  EXPECT_LT(lo, 5.2);
  EXPECT_GT(hi, 8.8);
}

TEST(Rng, UniformityChiSquareCoarse) {
  // 16 buckets over next_below(16): chi-square should be far from blowup.
  Rng rng(1234);
  std::vector<int> buckets(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(16)];
  double chi2 = 0;
  const double expected = n / 16.0;
  for (int b : buckets) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  // df=15; p=0.001 critical value ~37.7. Deterministic seed, so no flake.
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(99);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

}  // namespace
}  // namespace cosparse
