#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace cosparse {
namespace {

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| long-name"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_ratio(2.039), "2.04x");
  EXPECT_EQ(Table::fmt_pct(0.123), "12.3%");
}

TEST(Table, CsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string path = "/tmp/cosparse_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace cosparse
