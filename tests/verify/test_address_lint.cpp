#include "verify/address_lint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cosparse::verify {
namespace {

using kernels::PlannedRegion;
using kernels::RegionScope;

RunPlan base_plan() {
  RunPlan plan;
  plan.system = sim::SystemConfig::transmuter(2, 4);
  plan.dataset = {1000, 8000, 1000};
  return plan;
}

bool has(const std::vector<Finding>& fs, const std::string& id) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.id == id; });
}

// By value: callers pass freshly returned vectors, so a reference into
// the argument would dangle past the full expression.
Finding get(const std::vector<Finding>& fs, const std::string& id) {
  const auto it = std::find_if(fs.begin(), fs.end(),
                               [&](const Finding& f) { return f.id == id; });
  EXPECT_NE(it, fs.end()) << "missing finding " << id;
  return it == fs.end() ? Finding{} : *it;
}

TEST(AddressLint, DerivedRegionsLintWithoutErrors) {
  const auto fs = lint_address_map(base_plan());
  EXPECT_TRUE(std::none_of(fs.begin(), fs.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  }));
}

TEST(AddressLint, ZeroSizedRegionIsAnError) {
  auto plan = base_plan();
  plan.regions = std::vector<PlannedRegion>{
      {"vector.dense", 0, RegionScope::kGlobal, false, false, std::nullopt}};
  const auto& f = get(lint_address_map(plan), "address.zero-region");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.location.kind, "region");
  EXPECT_EQ(f.location.name, "vector.dense");
}

TEST(AddressLint, OverlappingPinnedRegionsAreAnError) {
  auto plan = base_plan();
  plan.regions = std::vector<PlannedRegion>{
      {"matrix.elems", 4096, RegionScope::kGlobal, false, false, Addr{0}},
      {"vector.dense", 4096, RegionScope::kGlobal, false, false, Addr{2048}},
      {"output.y", 4096, RegionScope::kGlobal, false, false, Addr{8192}}};
  const auto fs = lint_address_map(plan);
  const auto& f = get(fs, "address.overlap");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.location.name, "vector.dense");  // the later-starting region
  // Only the one overlapping pair is reported.
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(), [](const Finding& f2) {
              return f2.id == "address.overlap";
            }),
            1);
}

TEST(AddressLint, PerTileExtentCountsAllInstances) {
  // 512 B per tile x 2 tiles = 1024 B: a region starting 512 B later
  // collides with the second instance.
  auto plan = base_plan();
  plan.regions = std::vector<PlannedRegion>{
      {"matrix.col_ptr", 512, RegionScope::kPerTile, false, false, Addr{0}},
      {"vector.dense", 512, RegionScope::kGlobal, false, false, Addr{512}}};
  EXPECT_TRUE(has(lint_address_map(plan), "address.overlap"));
}

TEST(AddressLint, MisalignedBaseWarns) {
  auto plan = base_plan();
  plan.regions = std::vector<PlannedRegion>{
      {"vector.dense", 4096, RegionScope::kGlobal, false, false, Addr{96}}};
  EXPECT_EQ(get(lint_address_map(plan), "address.misaligned").severity,
            Severity::kWarning);
}

TEST(AddressLint, LabelHygiene) {
  auto plan = base_plan();
  plan.regions = std::vector<PlannedRegion>{
      {"", 64, RegionScope::kGlobal, false, false, std::nullopt},
      {"scratch.tmp", 64, RegionScope::kGlobal, false, false, std::nullopt},
      {"vector.dense", 64, RegionScope::kGlobal, false, false, std::nullopt},
      {"vector.dense", 64, RegionScope::kGlobal, false, false, std::nullopt}};
  const auto fs = lint_address_map(plan);
  EXPECT_EQ(get(fs, "address.unlabeled").severity, Severity::kError);
  EXPECT_EQ(get(fs, "address.unknown-label").severity, Severity::kWarning);
  EXPECT_TRUE(has(fs, "address.duplicate-label"));
}

TEST(AddressLint, SpmOverflowUnderPsIsAnError) {
  // A hand-pinned SPM region beyond the 4096 B private bank, not
  // spill-tolerant: hard error, located at the largest contributor.
  auto plan = base_plan();
  plan.sw = runtime::SwConfig::kOP;
  plan.hw = sim::HwConfig::kPS;
  plan.regions = std::vector<PlannedRegion>{
      {"op.heap", 6000, RegionScope::kPerPe, true, false, std::nullopt}};
  const auto& f = get(lint_address_map(plan), "address.spm-overflow");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.location.name, "op.heap");
}

TEST(AddressLint, SpillTolerantOverflowIsInformational) {
  auto plan = base_plan();
  plan.sw = runtime::SwConfig::kOP;
  plan.hw = sim::HwConfig::kPS;
  plan.regions = std::vector<PlannedRegion>{
      {"op.heap", 6000, RegionScope::kPerPe, true, true, std::nullopt}};
  const auto fs = lint_address_map(plan);
  EXPECT_FALSE(has(fs, "address.spm-overflow"));
  EXPECT_EQ(get(fs, "address.spm-spill").severity, Severity::kInfo);
}

TEST(AddressLint, ScsTileSpmCapacity) {
  // SCS gives (pes/2) banks = 8192 B per tile on a 2x4 system.
  auto plan = base_plan();
  plan.sw = runtime::SwConfig::kIP;
  plan.hw = sim::HwConfig::kSCS;
  plan.regions = std::vector<PlannedRegion>{
      {"vector.vblock_segment", 8192, RegionScope::kPerTile, true, false,
       std::nullopt}};
  EXPECT_FALSE(has(lint_address_map(plan), "address.spm-overflow"));
  plan.regions->front().bytes = 8193;
  EXPECT_TRUE(has(lint_address_map(plan), "address.spm-overflow"));
}

TEST(AddressLint, SpmWithoutSpmHardwareIsAnError) {
  auto plan = base_plan();
  plan.sw = runtime::SwConfig::kIP;
  plan.hw = sim::HwConfig::kSC;  // plain cache: no scratchpad exists
  plan.regions = std::vector<PlannedRegion>{
      {"vector.vblock_segment", 64, RegionScope::kPerTile, true, false,
       std::nullopt}};
  EXPECT_TRUE(has(lint_address_map(plan), "address.spm-not-available"));
}

TEST(AddressLint, GlobalScopedSpmIsAnError) {
  auto plan = base_plan();
  plan.regions = std::vector<PlannedRegion>{
      {"vector.vblock_segment", 64, RegionScope::kGlobal, true, false,
       std::nullopt}};
  EXPECT_TRUE(has(lint_address_map(plan), "address.spm-bad-scope"));
}

TEST(AddressLint, BankConflictStrideWarns) {
  // 8 PEs sharing 4 banks * 64 B lines: a streamed region whose per-PE
  // stride is a multiple of 256 B maps every PE to one bank.
  auto plan = base_plan();
  plan.sw = runtime::SwConfig::kIP;
  plan.regions = std::vector<PlannedRegion>{
      {"matrix.elems", 8u * 4 * 64 * 16, RegionScope::kGlobal, false, false,
       std::nullopt}};
  const auto fs = lint_address_map(plan);
  EXPECT_EQ(get(fs, "address.bank-conflict").severity, Severity::kWarning);
  // Off-multiple stride: no hazard.
  plan.regions->front().bytes += 8;  // stride no longer a bank multiple
  EXPECT_FALSE(has(lint_address_map(plan), "address.bank-conflict"));
}

}  // namespace
}  // namespace cosparse::verify
