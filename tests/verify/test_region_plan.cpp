#include "kernels/region_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/error.h"
#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/semiring.h"
#include "sparse/generate.h"

namespace cosparse::kernels {
namespace {

TEST(RegionScope, RoundTripsThroughStrings) {
  for (RegionScope s :
       {RegionScope::kGlobal, RegionScope::kPerTile, RegionScope::kPerPe}) {
    EXPECT_EQ(region_scope_from_string(to_string(s)), s);
  }
  EXPECT_THROW(region_scope_from_string("per_cluster"), Error);
}

TEST(RegionPlan, DefaultVblockColsMatchesEngineSizing) {
  // max(64, (SPM bytes / 8 B per value) rounded down to a line multiple).
  const auto cfg = sim::SystemConfig::transmuter(4, 8);
  const auto cols = static_cast<Index>(cfg.scs_spm_bytes_per_tile() / 8);
  EXPECT_EQ(default_vblock_cols(cfg), std::max<Index>(64, cols / 64 * 64));
  // Tiny SPM still yields the 64-column floor.
  auto small = cfg;
  small.pes_per_tile = 2;
  small.bank_bytes = 256;
  EXPECT_EQ(default_vblock_cols(small), 64);
}

TEST(RegionPlan, IpRegionsCoverKernelAllocations) {
  // The planner must mirror what run_inner_product actually allocates:
  // every machine allocation's label must be planned, and the persistent
  // AddressMap-managed arrays must match byte-for-byte. (output.y is
  // allocated fresh per invocation via Machine::alloc, so it shows up in
  // machine.allocations() but not in the AddressMap.)
  const auto cfg = sim::SystemConfig::transmuter(2, 4);
  const Index n = 300;
  const auto m =
      sparse::uniform_random(n, n, 4000, 7, sparse::ValueDist::kUniform01);
  const auto x = DenseFrontier::from_dense(sparse::random_dense_vector(n, 2));

  sim::Machine machine(cfg, sim::HwConfig::kSC);
  AddressMap amap(machine);
  const auto part = IpPartitionedMatrix::build(m, cfg.num_pes(), 64);
  (void)run_inner_product(machine, amap, part, x, PlainSpmv{});

  PlanShape shape{n, static_cast<std::uint64_t>(m.nnz()),
                  static_cast<std::size_t>(n)};
  const auto plan = plan_ip_regions(cfg, shape, /*scs=*/false);
  std::set<std::string> planned;
  for (const auto& r : plan) planned.insert(r.label);

  std::set<std::string> actual;
  for (const auto& rec : machine.allocations()) {
    actual.insert(rec.label);
    EXPECT_EQ(planned.count(rec.label), 1u)
        << "unplanned kernel region: " << rec.label;
  }
  EXPECT_EQ(planned, actual);
  amap.for_each_region([&](Addr, std::size_t bytes, std::string_view label) {
    const auto it = std::find_if(
        plan.begin(), plan.end(),
        [&](const PlannedRegion& r) { return r.label == label; });
    ASSERT_NE(it, plan.end()) << "unplanned kernel region: " << label;
    EXPECT_EQ(it->bytes, bytes) << "size mismatch for " << label;
  });
}

TEST(RegionPlan, OpRegionsCoverKernelAllocations) {
  const auto cfg = sim::SystemConfig::transmuter(2, 4);
  const Index n = 300;
  const auto m =
      sparse::uniform_random(n, n, 4000, 9, sparse::ValueDist::kUniform01);
  const auto x = sparse::random_sparse_vector(n, 0.2, 11);

  sim::Machine machine(cfg, sim::HwConfig::kPC);
  AddressMap amap(machine);
  const auto striped = OpStripedMatrix::build(m, cfg.num_tiles);
  (void)run_outer_product(machine, amap, striped, x, nullptr, PlainSpmv{});

  PlanShape shape{n, static_cast<std::uint64_t>(m.nnz()), x.nnz()};
  const auto plan = plan_op_regions(cfg, shape, /*ps=*/false);
  std::set<std::string> planned;
  for (const auto& r : plan) planned.insert(r.label);
  std::set<std::string> actual;
  for (const auto& rec : machine.allocations()) {
    actual.insert(rec.label);
    EXPECT_EQ(planned.count(rec.label), 1u)
        << "unplanned kernel region: " << rec.label;
    if (rec.label == "vector.sparse") {
      EXPECT_EQ(rec.bytes, x.nnz() * kOpEntryBytes);
    }
    if (rec.label == "op.heap") {
      // The kernel carves one per-tile range; the planner records the
      // per-PE share. Totals must agree.
      const auto heap = std::find_if(
          plan.begin(), plan.end(),
          [](const PlannedRegion& r) { return r.label == "op.heap"; });
      ASSERT_NE(heap, plan.end());
      EXPECT_EQ(rec.bytes, heap->bytes * cfg.pes_per_tile);
    }
  }
  EXPECT_EQ(planned, actual);
}

TEST(RegionPlan, ScsAddsSpmResidentSegment) {
  const auto cfg = sim::SystemConfig::transmuter(2, 4);
  PlanShape shape{100000, 1000000, 100000};
  const auto without = plan_ip_regions(cfg, shape, /*scs=*/false);
  const auto with = plan_ip_regions(cfg, shape, /*scs=*/true);
  EXPECT_EQ(with.size(), without.size() + 1);
  const auto& seg = with.back();
  EXPECT_EQ(seg.label, "vector.vblock_segment");
  EXPECT_TRUE(seg.spm);
  EXPECT_EQ(seg.scope, RegionScope::kPerTile);
  // One vblock's values fit the tile SPM by construction.
  EXPECT_LE(seg.bytes, cfg.scs_spm_bytes_per_tile());
  // Unblocked: the whole value array must be pinned.
  const auto pinned = plan_ip_regions(cfg, shape, true, /*vblocked=*/false);
  EXPECT_EQ(pinned.back().bytes, 100000u * kValueBytes);
}

TEST(RegionPlan, OpHeapIsSpillTolerantPerPe) {
  const auto cfg = sim::SystemConfig::transmuter(2, 4);
  PlanShape shape{1000, 10000, 800};
  const auto regions = plan_op_regions(cfg, shape, /*ps=*/true);
  const auto heap = std::find_if(
      regions.begin(), regions.end(),
      [](const PlannedRegion& r) { return r.label == "op.heap"; });
  ASSERT_NE(heap, regions.end());
  EXPECT_TRUE(heap->spm);
  EXPECT_TRUE(heap->spill_ok);
  EXPECT_EQ(heap->scope, RegionScope::kPerPe);
  const std::size_t chunk = (800 + cfg.pes_per_tile - 1) / cfg.pes_per_tile;
  EXPECT_EQ(heap->bytes, (chunk + 1) * kHeapNodeBytes);
  // Under PC the same heap is cacheable, not SPM.
  const auto pc = plan_op_regions(cfg, shape, /*ps=*/false);
  EXPECT_FALSE(pc.back().spm);
}

}  // namespace
}  // namespace cosparse::kernels
