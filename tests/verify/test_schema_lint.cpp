#include "verify/schema_lint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cosparse::verify {
namespace {

bool has(const std::vector<Finding>& fs, const std::string& id) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.id == id; });
}

Json minimal_report() {
  return Json::parse(R"({
    "schema": "cosparse.run_report/v1",
    "tool": "test"
  })");
}

TEST(SchemaLint, MinimalReportIsClean) {
  EXPECT_TRUE(lint_run_report(minimal_report()).empty());
}

TEST(SchemaLint, NonObjectAndWrongSchema) {
  EXPECT_TRUE(has(lint_run_report(Json::parse("[]")), "report.not-object"));
  auto doc = minimal_report();
  doc["schema"] = "cosparse.run_report/v99";
  EXPECT_TRUE(has(lint_run_report(doc), "report.bad-schema"));
  doc = minimal_report();
  doc["tool"] = "";
  EXPECT_TRUE(has(lint_run_report(doc), "report.missing-field"));
}

TEST(SchemaLint, TileStatsMustSumToGlobalStats) {
  auto doc = minimal_report();
  doc["stats"] = Json::parse(R"({"l1_misses": 10})");
  doc["tile_stats"] =
      Json::parse(R"([{"l1_misses": 4}, {"l1_misses": 4}])");
  const auto fs = lint_run_report(doc);
  ASSERT_TRUE(has(fs, "report.tile-sum-mismatch"));
  const auto it =
      std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
        return f.id == "report.tile-sum-mismatch";
      });
  EXPECT_EQ(it->location.kind, "document");
  EXPECT_EQ(it->location.name, "tile_stats.l1_misses");
  // Fixing the sum clears the finding.
  doc["tile_stats"] =
      Json::parse(R"([{"l1_misses": 4}, {"l1_misses": 6}])");
  EXPECT_TRUE(lint_run_report(doc).empty());
}

TEST(SchemaLint, IterationRecordsNeedMandatoryFields) {
  auto doc = minimal_report();
  doc["iterations"] = Json::parse(
      R"([{"index": 0, "frontier_nnz": 5, "density": 0.1, "sw": "XP",
           "hw": "SC", "cycles": 100}])");
  EXPECT_TRUE(has(lint_run_report(doc), "report.bad-value"));
  doc["iterations"] = Json::parse(R"([{"index": 0}])");
  EXPECT_TRUE(has(lint_run_report(doc), "report.missing-field"));
}

TEST(SchemaLint, ProfileTotalsMustMatchStats) {
  auto doc = minimal_report();
  doc["stats"] = Json::parse(R"({"dram_reads": 7})");
  doc["memory_profile"] = Json::parse(R"({
    "totals": {"dram_reads": 9},
    "regions": {"matrix.elems": {"counters": {"dram_reads": 9}}}
  })");
  EXPECT_TRUE(
      has(lint_run_report(doc), "report.profile-stats-divergence"));
}

TEST(SchemaLint, DecisionAuditInvariants) {
  auto doc = minimal_report();
  doc["decision_audit"] = Json::parse(R"({
    "invocations": [{
      "invocation": 0, "forced_sw": false, "features": {}, "checks": [],
      "sw": "IP", "hw": "SC", "cvd": 0.02,
      "counterfactuals": [{"chosen": true}, {"chosen": true},
                          {"chosen": false}, {"chosen": false}]
    }]
  })");
  // Two chosen counterfactuals violate the exactly-one invariant.
  EXPECT_TRUE(has(lint_run_report(doc), "report.bad-value"));
}

}  // namespace
}  // namespace cosparse::verify
