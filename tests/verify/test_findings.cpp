#include "verify/findings.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse::verify {
namespace {

TEST(Severity, RoundTripsThroughStrings) {
  for (Severity s : {Severity::kInfo, Severity::kWarning, Severity::kError}) {
    EXPECT_EQ(severity_from_string(to_string(s)), s);
  }
  EXPECT_THROW(severity_from_string("fatal"), Error);
}

TEST(Finding, RoundTripsThroughJson) {
  const Finding f{"config", "config.illegal-pair", Severity::kError,
                  "illegal configuration pair OP+SCS",
                  Location::config_field("kernel.hw")};
  const Finding back = finding_from_json(f.to_json());
  EXPECT_EQ(back.pass, f.pass);
  EXPECT_EQ(back.id, f.id);
  EXPECT_EQ(back.severity, f.severity);
  EXPECT_EQ(back.message, f.message);
  EXPECT_EQ(back.location.kind, "config_field");
  EXPECT_EQ(back.location.name, "kernel.hw");
}

TEST(LintReport, CountsAndCleanliness) {
  LintReport r("subject");
  EXPECT_TRUE(r.clean());
  r.emit("config", "a", Severity::kInfo, "i", Location::document("x"));
  r.emit("config", "b", Severity::kWarning, "w", Location::document("y"));
  EXPECT_TRUE(r.clean());
  r.emit("config", "c", Severity::kError, "e", Location::document("z"));
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.errors(), 1u);
  EXPECT_EQ(r.count(Severity::kWarning), 1u);
  EXPECT_EQ(r.count(Severity::kInfo), 1u);
}

TEST(LintReport, SortsMostSevereFirst) {
  LintReport r("subject");
  r.emit("p", "i1", Severity::kInfo, "first info", Location::document("a"));
  r.emit("p", "e1", Severity::kError, "first error", Location::document("b"));
  r.emit("p", "w1", Severity::kWarning, "warn", Location::document("c"));
  r.emit("p", "e2", Severity::kError, "second error", Location::document("d"));
  r.sort_by_severity();
  ASSERT_EQ(r.findings().size(), 4u);
  EXPECT_EQ(r.findings()[0].id, "e1");  // stable within a severity
  EXPECT_EQ(r.findings()[1].id, "e2");
  EXPECT_EQ(r.findings()[2].id, "w1");
  EXPECT_EQ(r.findings()[3].id, "i1");
}

TEST(LintReport, JsonCarriesSchemaAndSummary) {
  LintReport r("plans/x.json");
  r.emit("config", "config.no-tiles", Severity::kError, "num_tiles is 0",
         Location::config_field("system.num_tiles"));
  const Json j = r.to_json();
  EXPECT_EQ(j.find("schema")->as_string(), kLintReportSchema);
  EXPECT_EQ(j.find("subject")->as_string(), "plans/x.json");
  EXPECT_EQ(j.find("findings")->size(), 1u);
  EXPECT_EQ(j.find("summary")->find("errors")->as_int(), 1);
  EXPECT_EQ(j.find("summary")->find("warnings")->as_int(), 0);
}

}  // namespace
}  // namespace cosparse::verify
