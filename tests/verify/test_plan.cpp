#include "verify/plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"

namespace cosparse::verify {
namespace {

Json parse(const std::string& text) { return Json::parse(text); }

TEST(RunPlan, ParsesMinimalDocument) {
  const auto plan = RunPlan::from_json(parse(R"({
    "schema": "cosparse.run_plan/v1",
    "name": "tiny",
    "system": {"num_tiles": 2, "pes_per_tile": 4},
    "dataset": {"vertices": 1000, "edges": 5000}
  })"));
  EXPECT_EQ(plan.name, "tiny");
  EXPECT_EQ(plan.system.num_tiles, 2u);
  EXPECT_EQ(plan.system.pes_per_tile, 4u);
  EXPECT_EQ(plan.dataset.dimension, 1000);
  EXPECT_EQ(plan.dataset.matrix_nnz, 5000u);
  // Worst-case frontier defaults to every vertex active.
  EXPECT_EQ(plan.dataset.frontier_nnz, 1000u);
  EXPECT_FALSE(plan.sw.has_value());
  EXPECT_FALSE(plan.hw.has_value());
  EXPECT_TRUE(plan.unknown_fields.empty());
  EXPECT_NEAR(plan.matrix_density(), 5e-3, 1e-12);
}

TEST(RunPlan, ParsesPinnedKernelAndThresholds) {
  const auto plan = RunPlan::from_json(parse(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 100, "edges": 400, "max_frontier_nnz": 10},
    "kernel": {"sw": "OP", "hw": "PS", "vblocked": false},
    "thresholds": {"scs_density": 0.25, "ps_list_fraction": 0.5}
  })"));
  ASSERT_TRUE(plan.sw.has_value());
  EXPECT_EQ(*plan.sw, runtime::SwConfig::kOP);
  ASSERT_TRUE(plan.hw.has_value());
  EXPECT_EQ(*plan.hw, sim::HwConfig::kPS);
  EXPECT_FALSE(plan.vblocked);
  EXPECT_EQ(plan.dataset.frontier_nnz, 10u);
  EXPECT_DOUBLE_EQ(plan.thresholds.scs_density, 0.25);
  EXPECT_DOUBLE_EQ(plan.thresholds.ps_list_fraction, 0.5);
  // Untouched thresholds keep their defaults.
  EXPECT_DOUBLE_EQ(plan.thresholds.cvd_coefficient,
                   runtime::Thresholds{}.cvd_coefficient);
}

TEST(RunPlan, CollectsUnknownFieldsInsteadOfThrowing) {
  const auto plan = RunPlan::from_json(parse(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 10, "edges": 10, "vertexes": 11},
    "thresholds": {"scs_densty": 0.2},
    "system": {"num_tiles": 2, "bank_kb": 4},
    "frobnicate": true
  })"));
  const auto& u = plan.unknown_fields;
  EXPECT_NE(std::find(u.begin(), u.end(), "dataset.vertexes"), u.end());
  EXPECT_NE(std::find(u.begin(), u.end(), "thresholds.scs_densty"), u.end());
  EXPECT_NE(std::find(u.begin(), u.end(), "system.bank_kb"), u.end());
  EXPECT_NE(std::find(u.begin(), u.end(), "frobnicate"), u.end());
}

TEST(RunPlan, RejectsStructurallyMalformedDocuments) {
  EXPECT_THROW(RunPlan::from_json(parse("[1, 2]")), Error);
  EXPECT_THROW(RunPlan::from_json(parse(R"({"schema": "wrong/v9"})")), Error);
  EXPECT_THROW(RunPlan::from_json(
                   parse(R"({"kernel": {"sw": "sideways"}})")),
               Error);
  EXPECT_THROW(
      RunPlan::from_json(parse(R"({"regions": [{"bytes": 8}]})")), Error);
}

TEST(RunPlan, RoundTripsThroughJson) {
  auto plan = RunPlan::from_json(parse(R"({
    "schema": "cosparse.run_plan/v1",
    "name": "rt",
    "system": {"num_tiles": 8, "pes_per_tile": 16},
    "xbar": {"tile_ports": [0, 1, 2, 3, 4, 5, 6, 7]},
    "dataset": {"vertices": 5000, "edges": 40000},
    "kernel": {"sw": "IP", "hw": "SCS"},
    "regions": [{"label": "vector.dense", "bytes": 40000,
                 "scope": "global", "base": 4096}]
  })"));
  const auto back = RunPlan::from_json(plan.to_json());
  EXPECT_EQ(back.name, plan.name);
  EXPECT_EQ(back.system.num_tiles, plan.system.num_tiles);
  EXPECT_EQ(back.xbar_tile_ports, plan.xbar_tile_ports);
  EXPECT_EQ(back.sw, plan.sw);
  EXPECT_EQ(back.hw, plan.hw);
  ASSERT_TRUE(back.regions.has_value());
  EXPECT_EQ(back.regions->at(0).label, "vector.dense");
  EXPECT_EQ(back.regions->at(0).base, Addr{4096});
}

TEST(RunPlan, EffectiveTreeDerivedOrExplicit) {
  auto plan = RunPlan::from_json(parse(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000}
  })"));
  EXPECT_FALSE(plan.tree.has_value());
  EXPECT_FALSE(plan.effective_tree().rules.empty());

  plan.tree = runtime::DecisionTreeSpec{};
  plan.tree->rules.push_back({"only", runtime::SwConfig::kIP,
                              sim::HwConfig::kSC, {0.0, 1.0}, {}});
  EXPECT_EQ(plan.effective_tree().rules.size(), 1u);
}

TEST(RunPlan, EffectiveRegionsFollowPinnedDataflow) {
  auto doc = parse(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000},
    "kernel": {"sw": "IP", "hw": "SC"}
  })");
  const auto ip_only = RunPlan::from_json(doc).effective_regions();
  // SC pinned: no SPM segment; IP pinned: no OP regions.
  for (const auto& r : ip_only) {
    EXPECT_FALSE(r.spm) << r.label;
    EXPECT_NE(r.label.rfind("op.", 0), 0u) << r.label;
  }
  // Auto everything: both dataflows' regions, including SPM candidates.
  auto auto_plan = RunPlan::from_json(parse(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000}
  })"));
  const auto both = auto_plan.effective_regions();
  EXPECT_GT(both.size(), ip_only.size());
  EXPECT_TRUE(std::any_of(both.begin(), both.end(),
                          [](const auto& r) { return r.spm; }));
}

}  // namespace
}  // namespace cosparse::verify
