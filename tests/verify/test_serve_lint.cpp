#include "verify/serve_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "serve/config.h"

namespace cosparse::verify {
namespace {

bool has(const std::vector<Finding>& fs, const std::string& id) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.id == id; });
}

bool has_error(const std::vector<Finding>& fs) {
  return std::any_of(fs.begin(), fs.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

Json valid_config() {
  return Json::parse(R"({
    "schema": "cosparse.serve_config/v1",
    "scheduler_type": "same-dataset-batch",
    "max_active_reqs": 16,
    "max_batch_size": 4,
    "virtual_workers": 2,
    "exec_mode": "native",
    "scale": 64,
    "traffic": {
      "arrival": "bursty",
      "request_interval_us": 500,
      "request_total_cnt": 100,
      "seed": 7,
      "datasets": ["twitter", "vsp"],
      "algos": ["bfs", "pagerank"],
      "tenants": 4
    }
  })");
}

TEST(ServeLint, ValidConfigIsClean) {
  EXPECT_TRUE(lint_serve_config(valid_config()).empty());
}

TEST(ServeLint, ValidConfigAlsoParses) {
  // The lint pass and the strict parser must agree on what is valid.
  EXPECT_NO_THROW((void)serve::ServeConfig::from_json(valid_config()));
}

TEST(ServeLint, DocumentAndSchemaFindings) {
  EXPECT_TRUE(has(lint_serve_config(Json::parse("[]")),
                  "serve.bad-document"));
  auto doc = valid_config();
  doc["schema"] = "cosparse.run_report/v1";
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.wrong-schema"));
  Json no_schema = Json::object();
  no_schema["max_active_reqs"] = 4;
  EXPECT_TRUE(has(lint_serve_config(no_schema), "serve.missing-schema"));
}

TEST(ServeLint, UnknownFieldsTopLevelAndTraffic) {
  auto doc = valid_config();
  doc["warp_speed"] = true;
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.unknown-field"));
  doc = valid_config();
  doc["traffic"]["requests_interval_us"] = 100;
  const auto fs = lint_serve_config(doc);
  ASSERT_TRUE(has(fs, "serve.unknown-field"));
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.id == "serve.unknown-field";
  });
  EXPECT_NE(it->location.name.find("requests_interval_us"),
            std::string::npos);
}

TEST(ServeLint, TypeAndValueFindings) {
  auto doc = valid_config();
  doc["max_active_reqs"] = "lots";
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.bad-type"));
  doc = valid_config();
  doc["scheduler_type"] = "round-robin";
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.bad-value"));
  doc = valid_config();
  doc["traffic"]["arrival"] = "uniform";
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.bad-value"));
  doc = valid_config();
  doc["traffic"]["burst_fraction"] = 2.0;
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.bad-value"));
}

TEST(ServeLint, UnknownDatasetCrossReferencesRegistry) {
  auto doc = valid_config();
  doc["traffic"]["datasets"] = Json::parse(R"(["twitter", "friendster"])");
  const auto fs = lint_serve_config(doc);
  ASSERT_TRUE(has(fs, "serve.unknown-dataset"));
  EXPECT_TRUE(has_error(fs));
}

TEST(ServeLint, BudgetBelowLargestDatasetWarns) {
  auto doc = valid_config();
  doc["cache_budget_bytes"] = 1024;  // smaller than any scaled dataset
  const auto fs = lint_serve_config(doc);
  ASSERT_TRUE(has(fs, "serve.budget-below-dataset"));
  // A self-defeating-but-legal config warns; it must not error.
  EXPECT_FALSE(has_error(fs));
}

TEST(ServeLint, BatchExceedingAdmissionWarns) {
  auto doc = valid_config();
  doc["max_active_reqs"] = 2;
  doc["max_batch_size"] = 8;
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.batch-exceeds-active"));
}

TEST(ServeLint, UnusedBurstKnobsWarnUnderPoisson) {
  auto doc = valid_config();
  doc["traffic"]["arrival"] = "poisson";
  doc["traffic"]["burst_factor"] = 4.0;
  EXPECT_TRUE(has(lint_serve_config(doc), "serve.unused-burst-knobs"));
}

TEST(ServeLint, ReportWrapperCarriesSubjectAndPass) {
  auto doc = valid_config();
  doc["scheduler_type"] = "round-robin";
  const LintReport report =
      lint_serve_config_json(doc, "traces/bad.serve.json");
  EXPECT_EQ(report.subject(), "traces/bad.serve.json");
  EXPECT_FALSE(report.findings().empty());
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace cosparse::verify
