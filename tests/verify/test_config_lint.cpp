#include "verify/config_lint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cosparse::verify {
namespace {

RunPlan base_plan() {
  RunPlan plan;
  plan.system = sim::SystemConfig::transmuter(2, 4);
  plan.dataset = {1000, 8000, 1000};
  return plan;
}

bool has(const std::vector<Finding>& fs, const std::string& id) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.id == id; });
}

// By value: callers pass freshly returned vectors, so a reference into
// the argument would dangle past the full expression.
Finding get(const std::vector<Finding>& fs, const std::string& id) {
  const auto it = std::find_if(fs.begin(), fs.end(),
                               [&](const Finding& f) { return f.id == id; });
  EXPECT_NE(it, fs.end()) << "missing finding " << id;
  return it == fs.end() ? Finding{} : *it;
}

TEST(ConfigLint, PairLegalityMatchesPaperMatrix) {
  using runtime::SwConfig;
  using sim::HwConfig;
  EXPECT_TRUE(is_legal_pair(SwConfig::kIP, HwConfig::kSC));
  EXPECT_TRUE(is_legal_pair(SwConfig::kIP, HwConfig::kSCS));
  EXPECT_TRUE(is_legal_pair(SwConfig::kOP, HwConfig::kPC));
  EXPECT_TRUE(is_legal_pair(SwConfig::kOP, HwConfig::kPS));
  EXPECT_FALSE(is_legal_pair(SwConfig::kIP, HwConfig::kPC));
  EXPECT_FALSE(is_legal_pair(SwConfig::kIP, HwConfig::kPS));
  EXPECT_FALSE(is_legal_pair(SwConfig::kOP, HwConfig::kSC));
  EXPECT_FALSE(is_legal_pair(SwConfig::kOP, HwConfig::kSCS));
}

TEST(ConfigLint, CleanPlanHasNoFindings) {
  EXPECT_TRUE(lint_config(base_plan()).empty());
}

TEST(ConfigLint, IllegalPairIsAnErrorAtKernelHw) {
  auto plan = base_plan();
  plan.sw = runtime::SwConfig::kOP;
  plan.hw = sim::HwConfig::kSCS;
  const auto fs = lint_config(plan);
  const auto& f = get(fs, "config.illegal-pair");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.location.kind, "config_field");
  EXPECT_EQ(f.location.name, "kernel.hw");
}

TEST(ConfigLint, PinnedHwWithAutoSwWarns) {
  auto plan = base_plan();
  plan.hw = sim::HwConfig::kPC;
  const auto fs = lint_config(plan);
  EXPECT_EQ(get(fs, "config.hw-pinned-sw-auto").severity, Severity::kWarning);
}

TEST(ConfigLint, DegenerateTopologyAndGeometry) {
  auto plan = base_plan();
  plan.system.num_tiles = 0;
  plan.system.pes_per_tile = 0;
  plan.system.freq_ghz = 0.0;
  plan.system.bank_bytes = 0;
  plan.system.line_bytes = 0;
  const auto fs = lint_config(plan);
  for (const char* id : {"config.no-tiles", "config.no-pes",
                         "config.bad-clock", "config.bad-bank",
                         "config.bad-line"}) {
    EXPECT_EQ(get(fs, id).severity, Severity::kError) << id;
  }
}

TEST(ConfigLint, BankLineRelationship) {
  auto plan = base_plan();
  plan.system.line_bytes = 8192;  // exceeds the 4096 B bank
  EXPECT_TRUE(has(lint_config(plan), "config.line-exceeds-bank"));

  plan = base_plan();
  plan.system.bank_bytes = 4096 + 32;  // not a line multiple, not pow2
  const auto fs = lint_config(plan);
  EXPECT_TRUE(has(fs, "config.bank-line-mismatch"));
  EXPECT_TRUE(has(fs, "config.non-pow2-geometry"));

  plan = base_plan();
  plan.system.associativity = 256;  // one set no longer fits one bank
  EXPECT_TRUE(has(lint_config(plan), "config.bank-smaller-than-set"));
}

TEST(ConfigLint, ScsBankSplitNeedsPes) {
  auto plan = base_plan();
  plan.system.pes_per_tile = 1;
  EXPECT_TRUE(has(lint_config(plan), "config.scs-no-spm"));
  plan.system.pes_per_tile = 5;
  EXPECT_TRUE(has(lint_config(plan), "config.scs-odd-split"));
  // Pinned away from SCS, the split never happens: no finding.
  plan.sw = runtime::SwConfig::kOP;
  plan.hw = sim::HwConfig::kPC;
  EXPECT_FALSE(has(lint_config(plan), "config.scs-odd-split"));
}

TEST(ConfigLint, RxbarTopologyLeavesTileUnreachable) {
  auto plan = base_plan();  // 2 tiles
  plan.xbar_tile_ports = std::vector<std::uint32_t>{0, 0, 7};
  const auto fs = lint_config(plan);
  EXPECT_EQ(get(fs, "config.tile-unreachable").severity, Severity::kError);
  EXPECT_EQ(get(fs, "config.tile-unreachable").location.name,
            "xbar.tile_ports");
  EXPECT_TRUE(has(fs, "config.duplicate-tile-port"));
  EXPECT_TRUE(has(fs, "config.unknown-tile-port"));
  // Full port list: nothing to report.
  plan.xbar_tile_ports = std::vector<std::uint32_t>{0, 1};
  EXPECT_TRUE(lint_config(plan).empty());
}

TEST(ConfigLint, DramPathAndLatency) {
  auto plan = base_plan();
  plan.system.dram_channels = 0;
  plan.system.dram_latency_max = 10.0;  // below the 80-cycle minimum
  const auto fs = lint_config(plan);
  EXPECT_TRUE(has(fs, "config.no-dram-path"));
  EXPECT_TRUE(has(fs, "config.dram-latency-inverted"));
}

TEST(ConfigLint, UnknownFieldsSurfaceAsWarnings) {
  auto plan = base_plan();
  plan.unknown_fields = {"system.bank_kb", "frobnicate"};
  const auto fs = lint_config(plan);
  EXPECT_EQ(get(fs, "config.unknown-field").severity, Severity::kWarning);
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(), [](const Finding& f) {
              return f.id == "config.unknown-field";
            }),
            2);
}

}  // namespace
}  // namespace cosparse::verify
