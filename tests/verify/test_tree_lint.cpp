#include "verify/tree_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace cosparse::verify {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

RunPlan base_plan() {
  RunPlan plan;
  plan.system = sim::SystemConfig::transmuter(2, 4);
  plan.dataset = {1000, 8000, 1000};
  return plan;
}

bool has(const std::vector<Finding>& fs, const std::string& id) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.id == id; });
}

// By value: callers pass freshly returned vectors, so a reference into
// the argument would dangle past the full expression.
Finding get(const std::vector<Finding>& fs, const std::string& id) {
  const auto it = std::find_if(fs.begin(), fs.end(),
                               [&](const Finding& f) { return f.id == id; });
  EXPECT_NE(it, fs.end()) << "missing finding " << id;
  return it == fs.end() ? Finding{} : *it;
}

TEST(TreeLint, DerivedTreeProvesFullCoverage) {
  // The tree exported from sane thresholds partitions the feature space:
  // no gaps, no overlaps, no illegal pairs.
  const auto fs = lint_decision_tree(base_plan());
  EXPECT_FALSE(has(fs, "tree.gap"));
  EXPECT_FALSE(has(fs, "tree.overlap"));
  EXPECT_FALSE(has(fs, "tree.illegal-pair"));
}

TEST(TreeLint, GapInHandWrittenTreeIsAnError) {
  auto plan = base_plan();
  runtime::DecisionTreeSpec spec;
  // Covers density [0, 0.3) and [0.6, 1): the middle band is undecidable.
  spec.rules.push_back({"low", runtime::SwConfig::kOP, sim::HwConfig::kPC,
                        {0.0, 0.3}, {0.0, kInf}});
  spec.rules.push_back({"high", runtime::SwConfig::kIP, sim::HwConfig::kSC,
                        {0.6, 1.0}, {0.0, kInf}});
  plan.tree = std::move(spec);
  const auto& f = get(lint_decision_tree(plan), "tree.gap");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_NE(f.message.find("0.3"), std::string::npos);
  EXPECT_NE(f.message.find("0.6"), std::string::npos);
}

TEST(TreeLint, ConflictingOverlapIsAnError) {
  auto plan = base_plan();
  runtime::DecisionTreeSpec spec;
  spec.rules.push_back({"a", runtime::SwConfig::kOP, sim::HwConfig::kPC,
                        {0.0, 0.5}, {0.0, kInf}});
  spec.rules.push_back({"b", runtime::SwConfig::kIP, sim::HwConfig::kSC,
                        {0.4, 1.0}, {0.0, kInf}});
  plan.tree = std::move(spec);
  const auto& f = get(lint_decision_tree(plan), "tree.overlap");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.location.kind, "tree_node");
  // The [0.4, 0.5) band is claimed by both.
  EXPECT_NE(f.message.find("'a'"), std::string::npos);
  EXPECT_NE(f.message.find("'b'"), std::string::npos);
  // Remaining space is covered: the overlap must not double as a gap.
  EXPECT_FALSE(has(lint_decision_tree(plan), "tree.gap"));
}

TEST(TreeLint, SameConfigOverlapIsOnlyRedundant) {
  auto plan = base_plan();
  runtime::DecisionTreeSpec spec;
  spec.rules.push_back({"a", runtime::SwConfig::kIP, sim::HwConfig::kSC,
                        {0.0, 0.7}, {0.0, kInf}});
  spec.rules.push_back({"b", runtime::SwConfig::kIP, sim::HwConfig::kSC,
                        {0.5, 1.0}, {0.0, kInf}});
  plan.tree = std::move(spec);
  const auto fs = lint_decision_tree(plan);
  EXPECT_FALSE(has(fs, "tree.overlap"));
  EXPECT_EQ(get(fs, "tree.redundant-rules").severity, Severity::kWarning);
}

TEST(TreeLint, IllegalPairInsideRuleIsAnError) {
  auto plan = base_plan();
  runtime::DecisionTreeSpec spec;
  spec.rules.push_back({"bad", runtime::SwConfig::kOP, sim::HwConfig::kSCS,
                        {0.0, 1.0}, {0.0, kInf}});
  plan.tree = std::move(spec);
  const auto& f = get(lint_decision_tree(plan), "tree.illegal-pair");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.location.name, "bad");
}

TEST(TreeLint, EmptyRuleBoxIsUnreachable) {
  auto plan = base_plan();
  runtime::DecisionTreeSpec spec;
  spec.rules.push_back({"cover", runtime::SwConfig::kIP, sim::HwConfig::kSC,
                        {0.0, 1.0}, {0.0, kInf}});
  spec.rules.push_back({"never", runtime::SwConfig::kOP, sim::HwConfig::kPC,
                        {0.5, 0.5}, {0.0, kInf}});
  plan.tree = std::move(spec);
  const auto& f = get(lint_decision_tree(plan), "tree.unreachable-branch");
  EXPECT_EQ(f.severity, Severity::kWarning);  // hand-written: author error
  EXPECT_EQ(f.location.name, "never");
}

TEST(TreeLint, FootprintGapIsDetected) {
  // Coverage must hold on both axes: leave footprint [4096, 8192) bare.
  auto plan = base_plan();
  runtime::DecisionTreeSpec spec;
  spec.rules.push_back({"small", runtime::SwConfig::kIP, sim::HwConfig::kSC,
                        {0.0, 1.0}, {0.0, 4096.0}});
  spec.rules.push_back({"large", runtime::SwConfig::kIP, sim::HwConfig::kSCS,
                        {0.0, 1.0}, {8192.0, kInf}});
  plan.tree = std::move(spec);
  EXPECT_TRUE(has(lint_decision_tree(plan), "tree.gap"));
}

TEST(TreeLint, PsBudgetBeyondBankContradictsCalibration) {
  auto plan = base_plan();
  plan.thresholds.ps_list_fraction = 1.5;
  const auto& f =
      get(lint_decision_tree(plan), "tree.ps-budget-exceeds-bank");
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.location.name, "thresholds.ps_list_fraction");
  plan.thresholds.ps_list_fraction = 0.0;
  EXPECT_TRUE(has(lint_decision_tree(plan), "tree.ps-budget-empty"));
}

TEST(TreeLint, EmptyClampWindowIsAnError) {
  auto plan = base_plan();
  plan.thresholds.cvd_min = 0.1;
  plan.thresholds.cvd_max = 0.05;
  EXPECT_EQ(get(lint_decision_tree(plan), "tree.empty-clamp").severity,
            Severity::kError);
}

TEST(TreeLint, ScsDensityOutsideDomainWarns) {
  auto plan = base_plan();
  plan.thresholds.scs_density = 1.7;
  EXPECT_EQ(get(lint_decision_tree(plan), "tree.scs-out-of-range").severity,
            Severity::kWarning);
}

TEST(TreeLint, CvdOutsideCalibrationBracketWarns) {
  auto plan = base_plan();
  // Clamp window forces the CVD to 0.9 — far beyond calibrate's bracket.
  plan.thresholds.cvd_min = 0.9;
  plan.thresholds.cvd_max = 0.95;
  const auto fs = lint_decision_tree(plan);
  EXPECT_TRUE(has(fs, "tree.cvd-outside-calibration"));
  EXPECT_TRUE(has(fs, "tree.cvd-clamp-binds"));
}

TEST(TreeLint, ZeroDimensionDatasetIsAnError) {
  auto plan = base_plan();
  plan.dataset.dimension = 0;
  const auto fs = lint_decision_tree(plan);
  EXPECT_TRUE(has(fs, "tree.no-dataset"));
  // The partition analysis is skipped, so no spurious gap findings.
  EXPECT_FALSE(has(fs, "tree.gap"));
}

}  // namespace
}  // namespace cosparse::verify
