#include "runtime/tree_export.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace cosparse::runtime {
namespace {

TEST(TreeExport, FeatureIntervalSemantics) {
  const FeatureInterval i{0.1, 0.5};
  EXPECT_TRUE(i.contains(0.1));   // half-open: lo inclusive
  EXPECT_FALSE(i.contains(0.5));  // hi exclusive
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE((FeatureInterval{0.5, 0.5}).empty());
  // Default interval is the whole non-negative axis.
  const FeatureInterval all;
  EXPECT_TRUE(all.contains(0.0));
  EXPECT_TRUE(all.contains(1e18));
}

TEST(TreeExport, FootprintMatchesDecisionModel) {
  // 8 B of values plus 1 bit of bitmap per vertex.
  EXPECT_EQ(vector_footprint_bytes(8000), 8000u * 8 + 1000);
}

TEST(TreeExport, SpecRoundTripsThroughJson) {
  const auto cfg = sim::SystemConfig::transmuter(4, 8);
  const auto spec = export_decision_tree(cfg, Thresholds{}, 20000, 5e-4);
  ASSERT_FALSE(spec.rules.empty());
  const auto back = DecisionTreeSpec::from_json(spec.to_json());
  ASSERT_EQ(back.rules.size(), spec.rules.size());
  for (std::size_t i = 0; i < spec.rules.size(); ++i) {
    EXPECT_EQ(back.rules[i].node, spec.rules[i].node);
    EXPECT_EQ(back.rules[i].sw, spec.rules[i].sw);
    EXPECT_EQ(back.rules[i].hw, spec.rules[i].hw);
    EXPECT_DOUBLE_EQ(back.rules[i].density.lo, spec.rules[i].density.lo);
    EXPECT_DOUBLE_EQ(back.rules[i].density.hi, spec.rules[i].density.hi);
    EXPECT_DOUBLE_EQ(back.rules[i].footprint.lo, spec.rules[i].footprint.lo);
    // Infinite bounds survive the null encoding.
    EXPECT_EQ(std::isinf(back.rules[i].footprint.hi),
              std::isinf(spec.rules[i].footprint.hi));
  }
  EXPECT_THROW(DecisionTreeSpec::from_json(Json::array()), Error);
}

TEST(TreeExport, AgreesWithDecisionEngineAcrossDensities) {
  // The exported rules must pick exactly what DecisionEngine::decide picks,
  // for every frontier density — that is what makes the static analysis a
  // faithful model of the runtime. Sweep several machines and dimensions.
  for (const auto& [tiles, pes] : {std::pair<std::uint32_t, std::uint32_t>{2, 4},
                                   {4, 8},
                                   {16, 16}}) {
    const auto cfg = sim::SystemConfig::transmuter(tiles, pes);
    const Thresholds t;
    for (const Index dim : {Index{2000}, Index{20000}, Index{200000}}) {
      const double matrix_density = 5e-4;
      const auto spec = export_decision_tree(cfg, t, dim, matrix_density);
      const DecisionEngine de(cfg, t);
      const double fp = static_cast<double>(vector_footprint_bytes(dim));
      for (const double density :
           {0.0, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.999}) {
        const auto nnz =
            static_cast<std::size_t>(density * static_cast<double>(dim));
        const Decision want = de.decide(dim, matrix_density, nnz);
        const double d =
            static_cast<double>(nnz) / static_cast<double>(dim);
        int hits = 0;
        for (const auto& r : spec.rules) {
          if (!r.covers(d, fp)) continue;
          ++hits;
          EXPECT_EQ(r.sw, want.sw)
              << "system " << tiles << "x" << pes << " dim " << dim
              << " density " << d << ": rule " << r.node;
          EXPECT_EQ(r.hw, want.hw)
              << "system " << tiles << "x" << pes << " dim " << dim
              << " density " << d << ": rule " << r.node;
        }
        EXPECT_EQ(hits, 1) << "system " << tiles << "x" << pes << " dim "
                           << dim << " density " << d;
      }
    }
  }
}

TEST(TreeExport, PsThresholdConvertsBudgetToDensity) {
  const auto cfg = sim::SystemConfig::transmuter(2, 4);
  const Thresholds t;
  // At the breakpoint density the list no longer fits: one element over
  // floor(budget/node) per PE.
  const Index dim = 100000;
  const double d_ps = ps_density_threshold(cfg, t, dim);
  const auto at = static_cast<std::size_t>(std::lround(d_ps * dim));
  const DecisionEngine de(cfg, t);
  EXPECT_EQ(de.decide_hw(SwConfig::kOP, dim, at), sim::HwConfig::kPS);
  EXPECT_EQ(de.decide_hw(SwConfig::kOP, dim, at - cfg.pes_per_tile),
            sim::HwConfig::kPC);
  // Degenerate dimension: PS unreachable, threshold parked above 1.
  EXPECT_GT(ps_density_threshold(cfg, t, 0), 1.0);
}

}  // namespace
}  // namespace cosparse::runtime
