// Telemetry lint pass tests: report-section schema validation, JSONL
// stream monotonicity (seq / wall_ms / iterations), and the OpenMetrics
// text-exposition checks — each seeded defect must surface the right
// finding id, and the real exporters' output must pass clean.
#include "verify/telemetry_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/exporter.h"
#include "obs/telemetry.h"

namespace cosparse::verify {
namespace {

bool has_id(const std::vector<Finding>& findings, const std::string& id) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.id == id; });
}

// ---- the run-report telemetry section ----

TEST(TelemetryLint, AbsentSectionIsClean) {
  EXPECT_TRUE(lint_telemetry_section(Json::parse(R"({"tool":"x"})")).empty());
}

TEST(TelemetryLint, RealReportSectionPassesClean) {
  // Build the section the way the runtime does, not from a literal.
  obs::Telemetry t(obs::TelemetryConfig::parse("1i"), [] { return 1.0; });
  t.set_header("tool", "unit");
  t.histogram("m").observe(2.0);
  t.tick(1);
  Json doc = Json::object();
  doc["telemetry"] = t.report_json();
  EXPECT_TRUE(lint_telemetry_section(doc).empty());
}

TEST(TelemetryLint, DetectsBadSchemaAndMissingFields) {
  const Json doc = Json::parse(
      R"({"telemetry":{"schema":"bogus/v9","hist":{}}})");
  const auto f = lint_telemetry_section(doc);
  EXPECT_TRUE(has_id(f, "telemetry.bad-schema"));
  EXPECT_TRUE(has_id(f, "telemetry.missing-field"));  // no snapshots count
}

TEST(TelemetryLint, DetectsNonMonotoneQuantileLadder) {
  const Json doc = Json::parse(R"({"telemetry":{
    "schema":"cosparse.telemetry/v1","snapshots":1,
    "hist":{"m":{"count":3,"sum":6,"min":1,"max":3,
                 "p50":2,"p90":5,"p99":2,"p999":2}}}})");
  EXPECT_TRUE(has_id(lint_telemetry_section(doc), "telemetry.quantile-order"));
}

// ---- JSONL streams ----

std::string snapshot_line(std::uint64_t seq, double wall_ms,
                          std::uint64_t iterations) {
  Json o = Json::object();
  o["schema"] = obs::kTelemetrySchema;
  o["seq"] = seq;
  o["wall_ms"] = wall_ms;
  o["iterations"] = iterations;
  Json header = Json::object();
  header["tool"] = "unit";
  header["sim_threads"] = 0;
  o["header"] = std::move(header);
  o["hist"] = Json::object();
  return o.dump();
}

TEST(TelemetryLint, WellFormedJsonlStreamPassesClean) {
  const std::string text = snapshot_line(0, 1.0, 1) + "\n" +
                           snapshot_line(1, 2.0, 2) + "\n" +
                           snapshot_line(2, 2.0, 2) + "\n";  // flush repeat ok
  EXPECT_TRUE(lint_telemetry_jsonl(text).empty());
}

TEST(TelemetryLint, DetectsUnparseableLines) {
  EXPECT_TRUE(has_id(lint_telemetry_jsonl("{not json\n"), "telemetry.bad-json"));
}

TEST(TelemetryLint, DetectsSeqNotStrictlyIncreasing) {
  const std::string text =
      snapshot_line(0, 1.0, 1) + "\n" + snapshot_line(0, 2.0, 2) + "\n";
  EXPECT_TRUE(has_id(lint_telemetry_jsonl(text), "telemetry.seq-not-increasing"));
}

TEST(TelemetryLint, DetectsWallClockAndProgressRegressions) {
  const std::string text =
      snapshot_line(0, 5.0, 4) + "\n" + snapshot_line(1, 2.0, 3) + "\n";
  const auto f = lint_telemetry_jsonl(text);
  EXPECT_TRUE(has_id(f, "telemetry.time-regression"));
  EXPECT_TRUE(has_id(f, "telemetry.progress-regression"));
}

TEST(TelemetryLint, WarnsWhenHeaderLacksToolOrSimThreads) {
  const std::string text =
      R"({"schema":"cosparse.telemetry/v1","seq":0,"wall_ms":1,)"
      R"("iterations":1,"header":{},"hist":{}})" "\n";
  const auto f = lint_telemetry_jsonl(text);
  EXPECT_TRUE(has_id(f, "telemetry.missing-header"));
  // A warning, not an error: old streams stay readable.
  for (const Finding& finding : f) {
    if (finding.id == "telemetry.missing-header") {
      EXPECT_EQ(finding.severity, Severity::kWarning);
    }
  }
}

TEST(TelemetryLint, FlagsEmptyStreams) {
  EXPECT_TRUE(has_id(lint_telemetry_jsonl(""), "telemetry.empty-stream"));
  EXPECT_TRUE(has_id(lint_telemetry_jsonl("\n\n"), "telemetry.empty-stream"));
}

// ---- OpenMetrics expositions ----

TEST(TelemetryLint, RealExpositionPassesClean) {
  obs::StreamingHistogram h;
  h.observe(2.5);
  obs::TelemetrySnapshot snap;
  snap.seq = 3;
  snap.wall_ms = 10.0;
  snap.iterations = 7;
  snap.hist.emplace_back("engine.iteration_ms", h.summary());
  EXPECT_TRUE(lint_openmetrics(obs::to_openmetrics(snap)).empty());
}

TEST(TelemetryLint, DetectsMissingEofTerminator) {
  EXPECT_TRUE(has_id(lint_openmetrics("cosparse_x 1\n"),
                     "openmetrics.missing-eof"));
}

TEST(TelemetryLint, DetectsTextAfterEof) {
  EXPECT_TRUE(has_id(lint_openmetrics("cosparse_x 1\n# EOF\ncosparse_y 2\n"),
                     "openmetrics.text-after-eof"));
}

TEST(TelemetryLint, DetectsBadNamesTypesAndValues) {
  const auto f = lint_openmetrics(
      "# TYPE 9bad counter\n"
      "# TYPE cosparse_x flavor\n"
      "cosparse_x notanumber\n"
      "# EOF\n");
  EXPECT_TRUE(has_id(f, "openmetrics.bad-name"));
  EXPECT_TRUE(has_id(f, "openmetrics.bad-type"));
  EXPECT_TRUE(has_id(f, "openmetrics.bad-value"));
}

TEST(TelemetryLint, WarnsOnSamplelessExposition) {
  const auto f = lint_openmetrics("# EOF\n");
  EXPECT_TRUE(has_id(f, "openmetrics.empty"));
  EXPECT_FALSE(has_id(f, "openmetrics.missing-eof"));
}

}  // namespace
}  // namespace cosparse::verify
