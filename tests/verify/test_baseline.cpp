// Baseline (cosparse.lint_baseline/v1) unit tests: schema validation,
// (pass, id, location) matching, and the suppressed-findings accounting
// in LintReport / lint_findings_json.
#include "verify/baseline.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse::verify {
namespace {

LintReport two_finding_report() {
  LintReport r("subject");
  r.add(Finding{"determinism", "determinism.rand", Severity::kError, "rand",
                Location::source("src/sim/a.cpp", 10)});
  r.add(Finding{"determinism", "determinism.rand", Severity::kError, "rand",
                Location::source("src/sim/b.cpp", 20)});
  return r;
}

TEST(Baseline, RejectsWrongSchemaAndShape) {
  EXPECT_THROW(Baseline::from_json(Json::parse(R"({"schema": "nope"})")),
               Error);
  EXPECT_THROW(Baseline::from_json(Json::parse("[]")), Error);
  EXPECT_THROW(Baseline::from_json(Json::parse(R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "x"}]
  })")),
               Error);
}

TEST(Baseline, EmptySuppressListIsValid) {
  const Baseline b = Baseline::from_json(Json::parse(R"({
    "schema": "cosparse.lint_baseline/v1", "suppress": []
  })"));
  EXPECT_TRUE(b.empty());
  LintReport r = two_finding_report();
  EXPECT_EQ(b.apply(r), 0u);
  EXPECT_EQ(r.errors(), 2u);
}

TEST(Baseline, PassAndIdMatchSuppressesEveryLocation) {
  const Baseline b = Baseline::from_json(Json::parse(R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "determinism", "id": "determinism.rand"}]
  })"));
  LintReport r = two_finding_report();
  EXPECT_EQ(b.apply(r), 2u);
  EXPECT_EQ(r.errors(), 0u);
  EXPECT_EQ(r.suppressed_count(), 2u);
  // Suppressed findings stay in the report, marked.
  EXPECT_EQ(r.findings().size(), 2u);
  for (const Finding& f : r.findings()) EXPECT_TRUE(f.suppressed);
}

TEST(Baseline, LocationNarrowsToOneAnchor) {
  const Baseline b = Baseline::from_json(Json::parse(R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "determinism", "id": "determinism.rand",
                  "location": "src/sim/a.cpp:10"}]
  })"));
  LintReport r = two_finding_report();
  EXPECT_EQ(b.apply(r), 1u);
  EXPECT_EQ(r.errors(), 1u);
  EXPECT_EQ(r.findings()[0].suppressed ^ r.findings()[1].suppressed, 1);
}

TEST(Baseline, WrongPassDoesNotMatch) {
  const Baseline b = Baseline::from_json(Json::parse(R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "fp_exactness", "id": "determinism.rand"}]
  })"));
  LintReport r = two_finding_report();
  EXPECT_EQ(b.apply(r), 0u);
  EXPECT_EQ(r.errors(), 2u);
}

TEST(Baseline, SuppressedMarkerRoundTripsThroughJson) {
  LintReport r = two_finding_report();
  r.findings()[0].suppressed = true;
  const Json j = r.findings()[0].to_json();
  EXPECT_TRUE(j.find("suppressed")->as_bool());
  const Finding back = finding_from_json(j);
  EXPECT_TRUE(back.suppressed);
  // An unmarked finding omits the key entirely (stable golden JSON).
  EXPECT_EQ(r.findings()[1].to_json().find("suppressed"), nullptr);
  EXPECT_FALSE(finding_from_json(r.findings()[1].to_json()).suppressed);
}

TEST(Baseline, LintFindingsEnvelopeAggregatesAcrossSubjects) {
  LintReport a = two_finding_report();
  LintReport b("other");
  b.add(Finding{"phase_hygiene", "phase.unregistered-tag", Severity::kWarning,
                "tag", Location::source("src/x.cpp", 1)});
  a.findings()[0].suppressed = true;
  const Json doc = lint_findings_json("code", {a, b});
  EXPECT_EQ(doc.find("schema")->as_string(), kLintFindingsSchema);
  EXPECT_EQ(doc.find("subcommand")->as_string(), "code");
  ASSERT_EQ(doc.find("subjects")->items().size(), 2u);
  const Json* total = doc.find("summary");
  EXPECT_EQ(total->find("errors")->as_int(), 1);      // one of two suppressed
  EXPECT_EQ(total->find("warnings")->as_int(), 1);
  EXPECT_EQ(total->find("suppressed")->as_int(), 1);
}

TEST(Baseline, SourceLocationFormat) {
  EXPECT_EQ(Location::source("a/b.cpp", 7).name, "a/b.cpp:7");
  EXPECT_EQ(Location::source("a/b.cpp", 7).kind, "source");
  EXPECT_EQ(Location::source("a/b.cpp", 0).name, "a/b.cpp");  // whole file
}

}  // namespace
}  // namespace cosparse::verify
