#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.h"
#include "host_reference.h"
#include "sparse/datasets.h"
#include "sparse/generate.h"
#include "sparse/graph.h"

namespace cosparse::graph {
namespace {

using runtime::Engine;
using sparse::Coo;

TEST(PageRank, MatchesPowerIteration) {
  const Coo adj = sparse::uniform_random(800, 800, 8000, 1);
  const sparse::Graph g("t", adj, true);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  PageRankOptions opts;
  opts.max_iterations = 15;
  opts.tolerance = 0.0;  // run all 15 to match the reference exactly
  const auto got = pagerank(eng, g.out_degrees(), opts);
  const auto want = testing::reference_pagerank(adj, 0.85, 15);
  for (Index v = 0; v < 800; ++v) {
    EXPECT_NEAR(got.rank[v], want[v], 1e-12) << "vertex " << v;
  }
}

TEST(PageRank, AlwaysRunsInnerProduct) {
  // PR vectors are dense; the runtime must never pick OP (paper §III-D.2).
  const Coo adj = sparse::power_law(500, 500, 6000, 2.2, 2);
  const sparse::Graph g("t", adj, true);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = pagerank(eng, g.out_degrees());
  for (const auto& rec : got.stats.per_iteration) {
    EXPECT_EQ(rec.sw, runtime::SwConfig::kIP);
    EXPECT_FALSE(rec.converted_frontier);
  }
  (void)got;
}

TEST(PageRank, HighDegreeVertexRanksHigher) {
  // Star graph: everyone points at vertex 0.
  std::vector<sparse::Triplet> tri;
  for (Index v = 1; v < 50; ++v) tri.push_back({v, 0, 1.0});
  const Coo adj(50, 50, tri);
  const sparse::Graph g("star", adj, true);
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  const auto got = pagerank(eng, g.out_degrees());
  for (Index v = 1; v < 50; ++v) EXPECT_GT(got.rank[0], got.rank[v]);
}

TEST(PageRank, ConvergesUnderTolerance) {
  const Coo adj = sparse::uniform_random(400, 400, 4000, 3);
  const sparse::Graph g("t", adj, true);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 4));
  PageRankOptions opts;
  opts.tolerance = 1e-4;
  opts.max_iterations = 100;
  const auto got = pagerank(eng, g.out_degrees(), opts);
  EXPECT_LT(got.residual, 1e-4);
  EXPECT_LT(got.stats.iterations, 100u);
}

TEST(PageRank, RanksArePositive) {
  const Coo adj = sparse::power_law(300, 300, 3000, 2.1, 4);
  const sparse::Graph g("t", adj, true);
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  const auto got = pagerank(eng, g.out_degrees());
  for (Value r : got.rank) EXPECT_GT(r, 0.0);
}

TEST(PageRank, DegreeSizeMismatchThrows) {
  const Coo adj = sparse::uniform_random(100, 100, 500, 5);
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  std::vector<Index> wrong(50, 1);
  EXPECT_THROW(pagerank(eng, wrong), Error);
}

TEST(PageRank, NoHardwareThrashWithinRun) {
  // Dense iterations should settle into one configuration, not oscillate.
  sparse::DatasetRegistry reg;
  const auto g = reg.load("vsp", 16);
  Engine eng(g.adjacency(), sim::SystemConfig::transmuter(2, 8));
  const auto got = pagerank(eng, g.out_degrees());
  EXPECT_LE(got.stats.hw_switches(), 1u);  // at most the initial switch
}

}  // namespace
}  // namespace cosparse::graph
