#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/algorithms.h"
#include "host_reference.h"
#include "sparse/datasets.h"
#include "sparse/generate.h"

namespace cosparse::graph {
namespace {

using runtime::Engine;
using sparse::Coo;

TEST(Bfs, MatchesReferenceOnUniformGraph) {
  const Coo adj = sparse::uniform_random(1500, 1500, 12000, 1);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = bfs(eng, 0);
  EXPECT_EQ(got.level, testing::reference_bfs(adj, 0));
}

TEST(Bfs, MatchesReferenceOnPowerLawGraph) {
  const Coo adj = sparse::power_law(1200, 1200, 15000, 2.2, 2);
  Engine eng(adj, sim::SystemConfig::transmuter(4, 4));
  const auto got = bfs(eng, 5);
  EXPECT_EQ(got.level, testing::reference_bfs(adj, 5));
}

TEST(Bfs, MatchesReferenceOnDatasetStandIn) {
  sparse::DatasetRegistry reg;
  const auto g = reg.load("vsp", 32);
  Engine eng(g.adjacency(), sim::SystemConfig::transmuter(2, 8));
  const auto got = bfs(eng, 3);
  EXPECT_EQ(got.level, testing::reference_bfs(g.adjacency(), 3));
}

TEST(Bfs, SourceHasLevelZero) {
  const Coo adj = sparse::uniform_random(100, 100, 600, 3);
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  const auto got = bfs(eng, 42);
  EXPECT_EQ(got.level[42], 0);
}

TEST(Bfs, IsolatedSourceTerminatesImmediately) {
  // Vertex 9 has no out-edges.
  Coo adj(10, 10, {{0, 1, 1.0}, {1, 2, 1.0}});
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  const auto got = bfs(eng, 9);
  EXPECT_EQ(got.level[9], 0);
  for (Index v = 0; v < 9; ++v) EXPECT_EQ(got.level[v], -1);
}

TEST(Bfs, DisconnectedComponentUnreachable) {
  Coo adj(6, 6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}});
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  const auto got = bfs(eng, 0);
  EXPECT_EQ(got.level[2], 2);
  EXPECT_EQ(got.level[3], -1);
  EXPECT_EQ(got.level[5], -1);
}

TEST(Bfs, OutOfRangeSourceThrows) {
  const Coo adj = sparse::uniform_random(10, 10, 20, 4);
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  EXPECT_THROW(bfs(eng, 10), Error);
}

TEST(Bfs, StatsAccumulate) {
  const Coo adj = sparse::uniform_random(2000, 2000, 40000, 5);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = bfs(eng, 0);
  EXPECT_GT(got.stats.iterations, 1u);
  EXPECT_GT(got.stats.cycles, 0u);
  EXPECT_GT(got.stats.energy_pj, 0.0);
  EXPECT_EQ(got.stats.per_iteration.size(), got.stats.iterations);
}

TEST(Bfs, ReconfiguresOnExpandingFrontier) {
  // A well-connected random graph: the frontier balloons from 1 vertex to
  // a large fraction of the graph, forcing at least one OP->IP switch.
  const Coo adj = sparse::uniform_random(5000, 5000, 100000, 6);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = bfs(eng, 0);
  EXPECT_GE(got.stats.sw_switches(), 1u);
}

TEST(Bfs, ResultIndependentOfSystemSize) {
  const Coo adj = sparse::power_law(800, 800, 8000, 2.1, 7);
  Engine a(adj, sim::SystemConfig::transmuter(1, 2));
  Engine b(adj, sim::SystemConfig::transmuter(4, 8));
  EXPECT_EQ(bfs(a, 1).level, bfs(b, 1).level);
}

}  // namespace
}  // namespace cosparse::graph
