#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "graph/algorithms.h"
#include "sparse/generate.h"

namespace cosparse::graph {
namespace {

using runtime::Engine;
using sparse::Coo;

Coo ratings_matrix(Index n = 400, std::uint64_t nnz = 4000,
                   std::uint64_t seed = 1) {
  // Ratings in (0, 1]: CF factorizes them with rank-1 latent factors.
  return sparse::uniform_random(n, n, nnz, seed,
                                sparse::ValueDist::kUniform01);
}

TEST(Cf, LossDecreasesMonotonically) {
  const Coo r = ratings_matrix();
  Engine eng(r, sim::SystemConfig::transmuter(2, 8));
  CfOptions opts;
  opts.iterations = 8;
  const auto got = cf(eng, r, opts);
  ASSERT_EQ(got.loss_per_iteration.size(), 8u);
  for (std::size_t i = 1; i < got.loss_per_iteration.size(); ++i) {
    EXPECT_LT(got.loss_per_iteration[i], got.loss_per_iteration[i - 1])
        << "iteration " << i;
  }
}

TEST(Cf, AlwaysRunsInnerProduct) {
  const Coo r = ratings_matrix();
  Engine eng(r, sim::SystemConfig::transmuter(2, 8));
  const auto got = cf(eng, r, {.iterations = 3});
  for (const auto& rec : got.stats.per_iteration) {
    EXPECT_EQ(rec.sw, runtime::SwConfig::kIP);
    EXPECT_FALSE(rec.converted_frontier);
  }
  (void)got;
}

TEST(Cf, DeterministicForSameSeed) {
  const Coo r = ratings_matrix();
  Engine a(r, sim::SystemConfig::transmuter(2, 4));
  Engine b(r, sim::SystemConfig::transmuter(2, 4));
  const auto ra = cf(a, r, {.iterations = 4, .seed = 9});
  const auto rb = cf(b, r, {.iterations = 4, .seed = 9});
  EXPECT_EQ(ra.latent, rb.latent);
  const auto rc = cf(a, r, {.iterations = 4, .seed = 10});
  EXPECT_NE(ra.latent, rc.latent);
}

TEST(Cf, LatentFactorsApproximateRatings) {
  // A perfectly factorizable matrix: ratings = u_i * u_j for hidden u.
  const Index n = 100;
  std::vector<double> hidden(n);
  Rng rng(3);
  for (Index v = 0; v < n; ++v) hidden[v] = 0.4 + 0.4 * rng.next_double();
  std::vector<sparse::Triplet> tri;
  Rng pick(4);
  for (int k = 0; k < 1800; ++k) {
    const auto i = static_cast<Index>(pick.next_below(n));
    const auto j = static_cast<Index>(pick.next_below(n));
    tri.push_back({i, j, hidden[i] * hidden[j]});
  }
  const Coo r(n, n, tri);
  Engine eng(r, sim::SystemConfig::transmuter(2, 4));
  CfOptions opts;
  opts.iterations = 200;
  opts.beta = 0.05;
  opts.lambda = 0.0;
  const auto got = cf(eng, r, opts);
  // Table I's CF only descends the destination half of the gradient, so a
  // perfect fit is not the fixpoint; require a small normalized error and
  // an order-of-magnitude loss reduction.
  double err = 0.0, base = 0.0;
  for (const auto& t : r.triplets()) {
    const double e = t.value - got.latent[t.row] * got.latent[t.col];
    err += e * e;
    base += t.value * t.value;
  }
  EXPECT_LT(err / base, 0.10);
  ASSERT_FALSE(got.loss_per_iteration.empty());
  EXPECT_LT(got.loss_per_iteration.back(),
            0.2 * got.loss_per_iteration.front());
}

TEST(Cf, ResultIndependentOfSystemSize) {
  const Coo r = ratings_matrix(200, 2000, 5);
  Engine a(r, sim::SystemConfig::transmuter(1, 2));
  Engine b(r, sim::SystemConfig::transmuter(4, 8));
  const auto ra = cf(a, r, {.iterations = 5});
  const auto rb = cf(b, r, {.iterations = 5});
  ASSERT_EQ(ra.latent.size(), rb.latent.size());
  for (std::size_t v = 0; v < ra.latent.size(); ++v) {
    EXPECT_NEAR(ra.latent[v], rb.latent[v], 1e-9);
  }
}

TEST(Cf, MismatchedRatingsMatrixThrows) {
  const Coo r = ratings_matrix(100, 1000, 6);
  const Coo other = ratings_matrix(50, 400, 7);
  Engine eng(r, sim::SystemConfig::transmuter(1, 4));
  EXPECT_THROW(cf(eng, other, {}), Error);
}

}  // namespace
}  // namespace cosparse::graph
