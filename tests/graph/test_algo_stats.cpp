#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace cosparse::graph {
namespace {

runtime::IterationRecord record(runtime::SwConfig sw, bool sw_sw, bool hw_sw,
                                Cycles cycles) {
  runtime::IterationRecord r;
  r.sw = sw;
  r.sw_switched = sw_sw;
  r.hw_switched = hw_sw;
  r.cycles = cycles;
  return r;
}

TEST(AlgoStats, SwitchCounters) {
  AlgoStats s;
  s.per_iteration = {
      record(runtime::SwConfig::kOP, false, true, 10),
      record(runtime::SwConfig::kIP, true, true, 20),
      record(runtime::SwConfig::kIP, false, false, 30),
      record(runtime::SwConfig::kOP, true, true, 5),
  };
  EXPECT_EQ(s.sw_switches(), 2u);
  EXPECT_EQ(s.hw_switches(), 3u);
}

TEST(AlgoStats, TimeEnergyPowerConversions) {
  AlgoStats s;
  s.cycles = 2'000'000;     // 2 ms at 1 GHz
  s.energy_pj = 4e9;        // 4 mJ
  EXPECT_DOUBLE_EQ(s.seconds(1.0), 2e-3);
  EXPECT_DOUBLE_EQ(s.joules(), 4e-3);
  EXPECT_DOUBLE_EQ(s.watts(1.0), 2.0);
  // A 2 GHz clock halves the wall time and doubles power.
  EXPECT_DOUBLE_EQ(s.seconds(2.0), 1e-3);
  EXPECT_DOUBLE_EQ(s.watts(2.0), 4.0);
}

TEST(AlgoStats, ZeroCyclesZeroWatts) {
  AlgoStats s;
  EXPECT_DOUBLE_EQ(s.watts(), 0.0);
}

}  // namespace
}  // namespace cosparse::graph
