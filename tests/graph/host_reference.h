// Textbook reference implementations the CoSPARSE graph algorithms are
// validated against.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "sparse/formats.h"

namespace cosparse::graph::testing {

/// BFS levels by plain queue traversal over out-edges; -1 if unreachable.
inline std::vector<std::int64_t> reference_bfs(const sparse::Coo& adj,
                                               Index source) {
  const sparse::Csr g = sparse::coo_to_csr(adj);
  std::vector<std::int64_t> level(g.rows(), -1);
  std::queue<Index> q;
  level[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const Index u = q.front();
    q.pop();
    for (Offset k = g.row_begin(u); k < g.row_end(u); ++k) {
      const Index v = g.col_idx()[k];
      if (level[v] == -1) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

/// Dijkstra distances; +inf if unreachable.
inline std::vector<double> reference_sssp(const sparse::Coo& adj,
                                          Index source) {
  const sparse::Csr g = sparse::coo_to_csr(adj);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.rows(), kInf);
  using Item = std::pair<double, Index>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (Offset k = g.row_begin(u); k < g.row_end(u); ++k) {
      const Index v = g.col_idx()[k];
      const double nd = d + g.values()[k];
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

/// Dense power-iteration PageRank (same update rule as Table I).
inline std::vector<double> reference_pagerank(const sparse::Coo& adj,
                                              double damping,
                                              std::uint32_t iterations) {
  const Index n = adj.rows();
  std::vector<Index> deg(n, 0);
  for (const auto& t : adj.triplets()) ++deg[t.row];
  std::vector<double> rank(n, n > 0 ? 1.0 / n : 0.0), next(n);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (const auto& t : adj.triplets()) {
      next[t.col] += damping * rank[t.row] / static_cast<double>(deg[t.row]);
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace cosparse::graph::testing
