#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "graph/algorithms.h"
#include "host_reference.h"
#include "sparse/datasets.h"
#include "sparse/generate.h"

namespace cosparse::graph {
namespace {

using runtime::Engine;
using sparse::Coo;

void expect_dist_equal(const std::vector<Value>& got,
                       const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(got[v])) << "vertex " << v;
    } else {
      EXPECT_DOUBLE_EQ(got[v], want[v]) << "vertex " << v;
    }
  }
}

TEST(Sssp, MatchesDijkstraOnUniformGraph) {
  const Coo adj =
      sparse::uniform_random(1200, 1200, 10000, 1, sparse::ValueDist::kUniformInt);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = sssp(eng, 0);
  expect_dist_equal(got.dist, testing::reference_sssp(adj, 0));
}

TEST(Sssp, MatchesDijkstraOnPowerLawGraph) {
  const Coo adj =
      sparse::power_law(1000, 1000, 12000, 2.2, 2, sparse::ValueDist::kUniformInt);
  Engine eng(adj, sim::SystemConfig::transmuter(4, 4));
  const auto got = sssp(eng, 7);
  expect_dist_equal(got.dist, testing::reference_sssp(adj, 7));
}

TEST(Sssp, MatchesDijkstraOnDatasetStandIn) {
  sparse::DatasetRegistry reg;
  const auto g = reg.load("twitter", 64);
  Engine eng(g.adjacency(), sim::SystemConfig::transmuter(2, 8));
  const auto got = sssp(eng, 11);
  expect_dist_equal(got.dist, testing::reference_sssp(g.adjacency(), 11));
}

TEST(Sssp, SourceDistanceZero) {
  const Coo adj = sparse::uniform_random(50, 50, 200, 3,
                                         sparse::ValueDist::kUniformInt);
  Engine eng(adj, sim::SystemConfig::transmuter(1, 4));
  EXPECT_DOUBLE_EQ(sssp(eng, 13).dist[13], 0.0);
}

TEST(Sssp, TakesShorterMultiHopPath) {
  // 0->2 direct costs 10; 0->1->2 costs 3.
  Coo adj(3, 3, {{0, 2, 10.0}, {0, 1, 1.0}, {1, 2, 2.0}});
  Engine eng(adj, sim::SystemConfig::transmuter(1, 2));
  const auto got = sssp(eng, 0);
  EXPECT_DOUBLE_EQ(got.dist[2], 3.0);
}

TEST(Sssp, UnreachableVerticesStayInfinite) {
  Coo adj(5, 5, {{0, 1, 1.0}});
  Engine eng(adj, sim::SystemConfig::transmuter(1, 2));
  const auto got = sssp(eng, 0);
  EXPECT_TRUE(std::isinf(got.dist[4]));
}

TEST(Sssp, MaxIterationsBoundsWork) {
  // A 6-chain needs 5 relaxation rounds; capping at 2 leaves the tail inf.
  Coo adj(6, 6,
          {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}});
  Engine eng(adj, sim::SystemConfig::transmuter(1, 2));
  const auto got = sssp(eng, 0, /*max_iterations=*/2);
  EXPECT_DOUBLE_EQ(got.dist[2], 2.0);
  EXPECT_TRUE(std::isinf(got.dist[5]));
}

TEST(Sssp, OutOfRangeSourceThrows) {
  const Coo adj = sparse::uniform_random(10, 10, 20, 4);
  Engine eng(adj, sim::SystemConfig::transmuter(1, 2));
  EXPECT_THROW(sssp(eng, 99), Error);
}

TEST(Sssp, DensityRisesAndFallsAcrossIterations) {
  // Paper §II-A (pokec anecdote): frontier density grows to a peak then
  // collapses. Verify the same hump on a random graph.
  const Coo adj = sparse::uniform_random(4000, 4000, 60000, 5,
                                         sparse::ValueDist::kUniformInt);
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = sssp(eng, 0);
  const auto& iters = got.stats.per_iteration;
  ASSERT_GE(iters.size(), 3u);
  double peak = 0.0;
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < iters.size(); ++i) {
    if (iters[i].density > peak) {
      peak = iters[i].density;
      peak_at = i;
    }
  }
  EXPECT_GT(peak, iters.front().density);
  EXPECT_GT(peak, iters.back().density);
  EXPECT_GT(peak_at, 0u);
  EXPECT_LT(peak_at, iters.size() - 1);
}

TEST(Sssp, ResultIndependentOfSystemSize) {
  const Coo adj = sparse::power_law(600, 600, 7000, 2.3, 6,
                                    sparse::ValueDist::kUniformInt);
  Engine a(adj, sim::SystemConfig::transmuter(1, 2));
  Engine b(adj, sim::SystemConfig::transmuter(4, 8));
  const auto da = sssp(a, 2).dist;
  const auto db = sssp(b, 2).dist;
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t v = 0; v < da.size(); ++v) {
    if (std::isinf(da[v])) {
      EXPECT_TRUE(std::isinf(db[v]));
    } else {
      EXPECT_DOUBLE_EQ(da[v], db[v]);
    }
  }
}

}  // namespace
}  // namespace cosparse::graph
