#include <gtest/gtest.h>

#include "baselines/ligra/apps.h"
#include "graph/algorithms.h"
#include "sparse/datasets.h"
#include "sparse/generate.h"

namespace cosparse::graph {
namespace {

using runtime::Engine;
using sparse::Coo;

/// Union-find reference.
std::vector<Index> reference_cc(const Coo& sym) {
  std::vector<Index> parent(sym.rows());
  for (Index v = 0; v < sym.rows(); ++v) parent[v] = v;
  std::function<Index(Index)> find = [&](Index v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const auto& t : sym.triplets()) {
    const Index a = find(t.row), b = find(t.col);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Normalize every vertex to its component's minimum id.
  std::vector<Index> label(sym.rows());
  for (Index v = 0; v < sym.rows(); ++v) label[v] = find(v);
  // find() with min-union keeps the root the minimum of the merged pair,
  // but path orders can leave a non-minimal root; fix by one more sweep.
  std::vector<Index> min_of_root(sym.rows());
  for (Index v = 0; v < sym.rows(); ++v) min_of_root[v] = v;
  for (Index v = 0; v < sym.rows(); ++v) {
    min_of_root[label[v]] = std::min(min_of_root[label[v]], v);
  }
  for (Index v = 0; v < sym.rows(); ++v) label[v] = min_of_root[label[v]];
  return label;
}

TEST(ConnectedComponents, MatchesUnionFindOnRandomGraph) {
  // Sparse enough to have several components.
  const Coo adj = sparse::symmetrize(
      sparse::uniform_random(2000, 2000, 1500, 1));
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = connected_components(eng);
  EXPECT_EQ(got.component, reference_cc(adj));
}

TEST(ConnectedComponents, SingleComponentDenseGraph) {
  const Coo adj = sparse::symmetrize(
      sparse::uniform_random(500, 500, 5000, 2));
  Engine eng(adj, sim::SystemConfig::transmuter(2, 4));
  const auto got = connected_components(eng);
  EXPECT_EQ(got.num_components, 1u);
  for (Index v = 0; v < 500; ++v) EXPECT_EQ(got.component[v], 0u);
}

TEST(ConnectedComponents, IsolatedVerticesAreSingletons) {
  Coo adj = sparse::symmetrize(Coo(6, 6, {{0, 1, 1.0}, {2, 3, 1.0}}));
  Engine eng(adj, sim::SystemConfig::transmuter(1, 2));
  const auto got = connected_components(eng);
  EXPECT_EQ(got.component[0], 0u);
  EXPECT_EQ(got.component[1], 0u);
  EXPECT_EQ(got.component[2], 2u);
  EXPECT_EQ(got.component[3], 2u);
  EXPECT_EQ(got.component[4], 4u);
  EXPECT_EQ(got.component[5], 5u);
  EXPECT_EQ(got.num_components, 4u);
}

TEST(ConnectedComponents, ComponentCountMatchesReference) {
  const Coo adj = sparse::symmetrize(
      sparse::power_law(3000, 3000, 4000, 2.2, 3));
  Engine eng(adj, sim::SystemConfig::transmuter(2, 8));
  const auto got = connected_components(eng);
  const auto want = reference_cc(adj);
  std::set<Index> distinct(want.begin(), want.end());
  EXPECT_EQ(got.num_components, distinct.size());
  EXPECT_EQ(got.component, want);
}

TEST(ConnectedComponents, AgreesWithMiniLigra) {
  sparse::DatasetRegistry reg;
  const auto g = reg.load("youtube", 256);  // undirected dataset
  const Coo sym = sparse::symmetrize(g.adjacency());
  Engine eng(sym, sim::SystemConfig::transmuter(2, 8));
  const auto ours = connected_components(eng);
  const auto lg = baselines::ligra::LigraGraph::build(sym);
  const auto theirs = baselines::ligra::ligra_cc(lg);
  EXPECT_EQ(ours.component, theirs.component);
  EXPECT_EQ(ours.num_components, theirs.num_components);
}

TEST(Symmetrize, ProducesMirroredEntries) {
  const Coo m(3, 3, {{0, 1, 2.0}, {2, 0, 3.0}});
  const Coo s = sparse::symmetrize(m);
  EXPECT_EQ(s.nnz(), 4u);
  std::set<std::pair<Index, Index>> coords;
  for (const auto& t : s.triplets()) coords.insert({t.row, t.col});
  EXPECT_TRUE(coords.count({1, 0}));
  EXPECT_TRUE(coords.count({0, 2}));
}

TEST(Symmetrize, RejectsNonSquare) {
  EXPECT_THROW(sparse::symmetrize(Coo(2, 3, {})), Error);
}

}  // namespace
}  // namespace cosparse::graph
