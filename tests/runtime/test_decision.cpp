#include "runtime/decision.h"

#include <gtest/gtest.h>

namespace cosparse::runtime {
namespace {

TEST(Thresholds, CvdMatchesPaperTakeaways) {
  // §III-C.1: crossover ~2% at 8 PEs/tile falling to ~0.5% at 32, at the
  // reference matrix density.
  const Thresholds t;
  const double ref = t.matrix_density_reference;
  EXPECT_NEAR(t.cvd(8, ref), 0.02, 1e-12);
  EXPECT_NEAR(t.cvd(16, ref), 0.01, 1e-12);
  EXPECT_NEAR(t.cvd(32, ref), 0.005, 1e-12);
}

TEST(Thresholds, SparserMatrixRaisesCvd) {
  const Thresholds t;
  EXPECT_GT(t.cvd(16, 3.6e-6), t.cvd(16, 2.3e-4));
}

TEST(Thresholds, CvdClamped) {
  const Thresholds t;
  EXPECT_LE(t.cvd(2, 1e-9), t.cvd_max);
  EXPECT_GE(t.cvd(1024, 1.0), t.cvd_min);
}

TEST(Decision, DenseVectorSelectsIp) {
  DecisionEngine de(sim::SystemConfig::transmuter(4, 16));
  const auto d = de.decide(100000, 1e-4, 50000);  // 50% density
  EXPECT_EQ(d.sw, SwConfig::kIP);
}

TEST(Decision, SparseVectorSelectsOp) {
  DecisionEngine de(sim::SystemConfig::transmuter(4, 16));
  const auto d = de.decide(100000, 1e-4, 100);  // 0.1% density
  EXPECT_EQ(d.sw, SwConfig::kOP);
}

TEST(Decision, CrossoverMovesWithPesPerTile) {
  // A density between the 8-PE and 32-PE thresholds flips the choice.
  const double density = 0.01;  // 1%
  const Index n = 1000000;
  const auto nnz = static_cast<std::size_t>(density * n);
  DecisionEngine small(sim::SystemConfig::transmuter(4, 8));
  DecisionEngine large(sim::SystemConfig::transmuter(4, 32));
  EXPECT_EQ(small.decide(n, 2.3e-4, nnz).sw, SwConfig::kOP);  // cvd 2%
  EXPECT_EQ(large.decide(n, 2.3e-4, nnz).sw, SwConfig::kIP);  // cvd 0.5%
}

TEST(Decision, IpHwPrefersScWhenVectorFitsInL1) {
  // 16 PEs * 4 kB = 64 kB L1 per tile; a 4k-vertex vector (~36 kB) fits.
  DecisionEngine de(sim::SystemConfig::transmuter(4, 16));
  EXPECT_EQ(de.decide_hw(SwConfig::kIP, 4096, 4000), sim::HwConfig::kSC);
}

TEST(Decision, IpHwSelectsScsForDenseOversizedVector) {
  DecisionEngine de(sim::SystemConfig::transmuter(4, 16));
  // 1M vertices (8+ MB) with 47% density: Fig. 9's SCS iterations.
  EXPECT_EQ(de.decide_hw(SwConfig::kIP, 1000000, 470000),
            sim::HwConfig::kSCS);
  // 5% density: Fig. 9's iteration 8 stays SC.
  EXPECT_EQ(de.decide_hw(SwConfig::kIP, 1000000, 50000), sim::HwConfig::kSC);
}

TEST(Decision, OpHwSelectsPsWhenSortedListSpills) {
  DecisionEngine de(sim::SystemConfig::transmuter(4, 16));
  // 16 PEs/tile, 4 kB bank, 16 B heap node -> 256 entries per PE.
  // 16 * 256 = 4096 frontier non-zeros fit; beyond spills.
  EXPECT_EQ(de.decide_hw(SwConfig::kOP, 1000000, 4096), sim::HwConfig::kPC);
  EXPECT_EQ(de.decide_hw(SwConfig::kOP, 1000000, 40960), sim::HwConfig::kPS);
}

TEST(Decision, FullDecisionTreeConsistency) {
  // Property: decide() always returns an IP config with IP and an OP
  // config with OP (Fig. 2's tree shape).
  DecisionEngine de(sim::SystemConfig::transmuter(8, 8));
  for (std::size_t nnz : {0ul, 10ul, 1000ul, 50000ul, 400000ul, 1000000ul}) {
    const auto d = de.decide(1000000, 1e-5, nnz);
    if (d.sw == SwConfig::kIP) {
      EXPECT_TRUE(d.hw == sim::HwConfig::kSC || d.hw == sim::HwConfig::kSCS);
    } else {
      EXPECT_TRUE(d.hw == sim::HwConfig::kPC || d.hw == sim::HwConfig::kPS);
    }
  }
}

TEST(Decision, EmptyFrontierIsOp) {
  DecisionEngine de(sim::SystemConfig::transmuter(4, 8));
  const auto d = de.decide(1000, 1e-3, 0);
  EXPECT_EQ(d.sw, SwConfig::kOP);
  EXPECT_EQ(d.hw, sim::HwConfig::kPC);
}

TEST(Decision, ToStringNames) {
  EXPECT_STREQ(to_string(SwConfig::kIP), "IP");
  EXPECT_STREQ(to_string(SwConfig::kOP), "OP");
}

}  // namespace
}  // namespace cosparse::runtime
