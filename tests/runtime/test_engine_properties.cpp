// Randomized end-to-end property tests of the reconfiguring engine:
// whatever density sequence arrives, results must match the host reference
// and the machine state must follow the decision tree.
#include <gtest/gtest.h>

#include <cmath>

#include <tuple>

#include "common/rng.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sparse/generate.h"

namespace cosparse::runtime {
namespace {

using kernels::DenseFrontier;
using kernels::PlainSpmv;
using sparse::Coo;
using sparse::SparseVector;

sparse::DenseVector reference(const Coo& a, const SparseVector& x) {
  sparse::DenseVector y(a.cols(), 0.0);
  const sparse::DenseVector xd = sparse::to_dense(x, 0.0);
  for (const auto& t : a.triplets()) y[t.col] += t.value * xd[t.row];
  return y;
}

// (tiles, pes_per_tile, power_law)
using Params = std::tuple<std::uint32_t, std::uint32_t, bool>;

class EngineRandomSequence : public ::testing::TestWithParam<Params> {};

TEST_P(EngineRandomSequence, TenRandomDensityIterationsStayCorrect) {
  const auto tiles = std::get<0>(GetParam());
  const auto pes = std::get<1>(GetParam());
  const auto power_law = std::get<2>(GetParam());
  const Index n = 1500;
  const Coo a = power_law
                    ? sparse::power_law(n, n, 15000, 2.2, 5,
                                        sparse::ValueDist::kUniform01)
                    : sparse::uniform_random(n, n, 15000, 5,
                                             sparse::ValueDist::kUniform01);
  Engine eng(a, sim::SystemConfig::transmuter(tiles, pes));
  Rng rng(99);
  for (int iter = 0; iter < 10; ++iter) {
    // Log-uniform density in [1e-3, 1].
    const double density = std::pow(10.0, -3.0 * rng.next_double());
    const SparseVector x =
        sparse::random_sparse_vector(n, density, 1000 + iter);
    // Randomly choose the incoming representation: the engine must convert
    // whenever the chosen dataflow disagrees.
    const bool arrive_dense = rng.next_bool(0.5);
    const auto out =
        arrive_dense
            ? eng.spmv(Engine::Frontier::from_dense(
                           DenseFrontier::from_sparse(x, 0.0)),
                       PlainSpmv{})
            : eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});

    // 1. Functional correctness regardless of configuration.
    const auto want = reference(a, x);
    out.for_each_touched([&](Index r, Value v) {
      ASSERT_NEAR(v, want[r], 1e-9) << "iter " << iter << " row " << r;
    });

    // 2. The machine's configuration matches the logged decision, and the
    //    decision respects the tree shape.
    const auto& rec = eng.iterations().back();
    EXPECT_EQ(eng.machine().hw(), rec.hw);
    if (rec.sw == SwConfig::kIP) {
      EXPECT_TRUE(rec.hw == sim::HwConfig::kSC ||
                  rec.hw == sim::HwConfig::kSCS);
      EXPECT_TRUE(out.dense);
    } else {
      EXPECT_TRUE(rec.hw == sim::HwConfig::kPC ||
                  rec.hw == sim::HwConfig::kPS);
      EXPECT_FALSE(out.dense);
    }

    // 3. Conversion flag consistent with representation mismatch.
    const bool needed_conversion =
        arrive_dense != (rec.sw == SwConfig::kIP);
    EXPECT_EQ(rec.converted_frontier, needed_conversion) << "iter " << iter;

    // 4. Cycles strictly increase.
    EXPECT_GT(rec.cycles, 0u);
  }
  // The random sequence must have exercised both dataflows.
  bool saw_ip = false, saw_op = false;
  for (const auto& rec : eng.iterations()) {
    saw_ip |= rec.sw == SwConfig::kIP;
    saw_op |= rec.sw == SwConfig::kOP;
  }
  EXPECT_TRUE(saw_ip);
  EXPECT_TRUE(saw_op);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineRandomSequence,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(4u, 8u), ::testing::Bool()),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_powerlaw" : "_uniform");
    });

TEST(EngineProperties, ReconfigurationCountMatchesLog) {
  const Coo a = sparse::uniform_random(2000, 2000, 20000, 1);
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  // Alternate extreme densities to force switches.
  for (int i = 0; i < 6; ++i) {
    const double d = (i % 2 == 0) ? 0.001 : 0.8;
    eng.spmv(Engine::Frontier::from_sparse(
                 sparse::random_sparse_vector(2000, d, 50 + i)),
             PlainSpmv{});
  }
  std::uint64_t logged = 0;
  for (const auto& rec : eng.iterations()) logged += rec.hw_switched ? 1 : 0;
  EXPECT_EQ(eng.machine().stats().reconfigurations, logged);
  EXPECT_GE(logged, 5u);  // every iteration flips config here
}

TEST(EngineProperties, ReconfigOverheadBoundedPerSwitch) {
  // With clean caches a reconfiguration costs barrier + <= 10 cycles +
  // flush; across a run, reconfig overhead must stay a small fraction.
  const Coo a = sparse::uniform_random(3000, 3000, 40000, 2);
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  for (int i = 0; i < 4; ++i) {
    const double d = (i % 2 == 0) ? 0.002 : 0.9;
    eng.spmv(Engine::Frontier::from_sparse(
                 sparse::random_sparse_vector(3000, d, 60 + i)),
             PlainSpmv{});
  }
  // Flushed lines bounded by total cache capacity per switch.
  const auto& st = eng.machine().stats();
  const auto capacity_lines =
      (eng.system().l1_bytes_per_tile() * eng.system().num_tiles +
       eng.system().l2_bytes_total()) /
      kCacheLineBytes;
  EXPECT_LE(st.flushed_dirty_lines,
            st.reconfigurations * capacity_lines);
}

}  // namespace
}  // namespace cosparse::runtime
