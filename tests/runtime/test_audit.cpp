// Decision audit trail: one complete, deterministic record per decide().
#include "runtime/audit.h"

#include <gtest/gtest.h>

#include "runtime/decision.h"

namespace cosparse::runtime {
namespace {

DecisionEngine engine_with(AuditTrail* trail) {
  DecisionEngine de(sim::SystemConfig::transmuter(4, 16));
  de.set_audit(trail);
  return de;
}

TEST(Audit, RecordsOnePerDecision) {
  AuditTrail trail;
  auto de = engine_with(&trail);
  (void)de.decide(100000, 1e-4, 50000);
  (void)de.decide(100000, 1e-4, 100);
  ASSERT_EQ(trail.records().size(), 2u);
  EXPECT_EQ(trail.records()[0].invocation, 0u);
  EXPECT_EQ(trail.records()[1].invocation, 1u);
}

TEST(Audit, RecordHasFeaturesChecksAndFourCounterfactuals) {
  AuditTrail trail;
  auto de = engine_with(&trail);
  const auto d = de.decide(100000, 1e-4, 50000);
  ASSERT_EQ(trail.records().size(), 1u);
  const DecisionRecord& rec = trail.records().front();

  EXPECT_EQ(rec.sw, d.sw);
  EXPECT_EQ(rec.hw, d.hw);
  EXPECT_FALSE(rec.forced_sw);
  EXPECT_EQ(rec.features.dimension, 100000);
  EXPECT_DOUBLE_EQ(rec.features.matrix_density, 1e-4);
  EXPECT_EQ(rec.features.frontier_nnz, 50000u);
  EXPECT_DOUBLE_EQ(rec.features.vector_density, 0.5);
  EXPECT_GT(rec.features.vector_footprint_bytes, 0u);
  EXPECT_GT(rec.features.l1_bytes_per_tile, 0u);

  // The root CVD comparison is always audited on a free decision, and the
  // applied threshold matches the recorded margin.
  ASSERT_FALSE(rec.checks.empty());
  EXPECT_EQ(rec.checks.front().name, "cvd");
  EXPECT_DOUBLE_EQ(rec.checks.front().margin,
                   rec.checks.front().value - rec.checks.front().threshold);
  EXPECT_GT(rec.cvd, 0.0);

  // All four candidate configurations are estimated; exactly one is the
  // chosen one and it matches the decision.
  ASSERT_EQ(rec.counterfactuals.size(), 4u);
  std::size_t chosen = 0;
  for (const Counterfactual& cf : rec.counterfactuals) {
    EXPECT_GT(cf.est_cycles, 0u);
    if (cf.chosen) {
      ++chosen;
      EXPECT_EQ(cf.sw, d.sw);
      EXPECT_EQ(cf.hw, d.hw);
    }
  }
  EXPECT_EQ(chosen, 1u);
}

TEST(Audit, ForcedSwIsFlaggedAndSkipsCvdCheck) {
  AuditTrail trail;
  auto de = engine_with(&trail);
  const auto d = de.decide_forced_sw(SwConfig::kOP, 100000, 1e-4, 50000);
  EXPECT_EQ(d.sw, SwConfig::kOP);
  ASSERT_EQ(trail.records().size(), 1u);
  const DecisionRecord& rec = trail.records().front();
  EXPECT_TRUE(rec.forced_sw);
  for (const ThresholdCheck& c : rec.checks) EXPECT_NE(c.name, "cvd");
}

TEST(Audit, SameInputsProduceIdenticalRecords) {
  // Determinism is what makes audit diffs meaningful: byte-identical JSON
  // for byte-identical inputs, across engine instances.
  AuditTrail a;
  AuditTrail b;
  auto da = engine_with(&a);
  auto db = engine_with(&b);
  for (const std::size_t nnz : {100u, 5000u, 50000u, 99999u}) {
    (void)da.decide(100000, 2.3e-4, nnz);
    (void)db.decide(100000, 2.3e-4, nnz);
  }
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(Audit, ClearResetsInvocationIds) {
  AuditTrail trail;
  auto de = engine_with(&trail);
  (void)de.decide(1000, 1e-3, 500);
  trail.clear();
  EXPECT_TRUE(trail.empty());
  (void)de.decide(1000, 1e-3, 500);
  ASSERT_EQ(trail.records().size(), 1u);
  EXPECT_EQ(trail.records().front().invocation, 0u);
}

TEST(Audit, JsonSectionShape) {
  AuditTrail trail;
  auto de = engine_with(&trail);
  (void)de.decide(100000, 1e-4, 100);
  const Json j = trail.to_json();
  const Json* invs = j.find("invocations");
  ASSERT_NE(invs, nullptr);
  ASSERT_TRUE(invs->is_array());
  ASSERT_EQ(invs->size(), 1u);
  const Json& rec = invs->at(0);
  for (const char* key : {"invocation", "forced_sw", "features", "checks",
                          "sw", "hw", "cvd", "counterfactuals"}) {
    EXPECT_NE(rec.find(key), nullptr) << key;
  }
  // Span args carry the compact decision view for trace tooling.
  const Json args = trail.records().front().to_span_args();
  for (const char* key : {"invocation", "sw", "hw", "cvd", "est_cycles"}) {
    EXPECT_NE(args.find(key), nullptr) << key;
  }
}

}  // namespace
}  // namespace cosparse::runtime
