#include "runtime/calibrate.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse::runtime {
namespace {

CalibrationOptions small_opts() {
  CalibrationOptions o;
  o.dimension = 16384;
  o.nnz = 262144;
  o.refinement_steps = 4;
  return o;
}

TEST(Calibrate, SampleMeasuresBothKernels) {
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const auto s = measure_crossover_sample(cfg, 0.01, small_opts());
  EXPECT_GT(s.ip_cycles, 0u);
  EXPECT_GT(s.op_cycles, 0u);
  EXPECT_DOUBLE_EQ(s.density, 0.01);
  EXPECT_GT(s.ratio(), 0.0);
}

TEST(Calibrate, CrossoverWithinBracketAndConsistent) {
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const auto cal = calibrate_cvd(cfg, small_opts());
  EXPECT_GE(cal.cvd, small_opts().density_lo);
  EXPECT_LE(cal.cvd, small_opts().density_hi);
  EXPECT_GE(cal.samples.size(), 2u);
  // Consistency: OP must win clearly below the crossover and IP clearly
  // above it (checked on the recorded samples themselves).
  for (const auto& s : cal.samples) {
    if (s.density < cal.cvd / 4.0) EXPECT_GT(s.ratio(), 1.0);
    if (s.density > cal.cvd * 4.0) EXPECT_LT(s.ratio(), 1.0);
  }
}

TEST(Calibrate, Deterministic) {
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const auto a = calibrate_cvd(cfg, small_opts());
  const auto b = calibrate_cvd(cfg, small_opts());
  EXPECT_DOUBLE_EQ(a.cvd, b.cvd);
}

TEST(Calibrate, ThresholdsReproduceMeasuredCvd) {
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const auto opts = small_opts();
  const auto cal = calibrate_cvd(cfg, opts);
  const auto t = calibrate_thresholds(cfg, opts);
  const double r = static_cast<double>(opts.nnz) /
                   (static_cast<double>(opts.dimension) *
                    static_cast<double>(opts.dimension));
  EXPECT_NEAR(t.cvd(cfg.pes_per_tile, r), cal.cvd, cal.cvd * 0.05);
}

TEST(Calibrate, RejectsBadBracket) {
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  CalibrationOptions o = small_opts();
  o.density_lo = 0.5;
  o.density_hi = 0.1;
  EXPECT_THROW(calibrate_cvd(cfg, o), Error);
}

}  // namespace
}  // namespace cosparse::runtime
