#include "runtime/engine.h"

#include <gtest/gtest.h>

#include "kernels/semiring.h"
#include "sparse/generate.h"

namespace cosparse::runtime {
namespace {

using kernels::DenseFrontier;
using kernels::PlainSpmv;
using sparse::Coo;
using sparse::SparseVector;

Coo test_matrix(Index n = 2000, std::uint64_t nnz = 30000,
                std::uint64_t seed = 1) {
  return sparse::uniform_random(n, n, nnz, seed,
                                sparse::ValueDist::kUniform01);
}

/// Engine computes y = A^T x; the reference must transpose too.
sparse::DenseVector reference(const Coo& a, const SparseVector& x) {
  sparse::DenseVector y(a.cols(), 0.0);
  sparse::DenseVector xd = sparse::to_dense(x, 0.0);
  for (const auto& t : a.triplets()) {
    y[t.col] += t.value * xd[t.row];
  }
  return y;
}

TEST(Engine, SparseFrontierRunsOpAndMatchesReference) {
  const Coo a = test_matrix();
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  const SparseVector x = sparse::random_sparse_vector(2000, 0.005, 2);
  const auto out = eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
  EXPECT_FALSE(out.dense);
  EXPECT_EQ(out.decision.sw, SwConfig::kOP);
  const auto want = reference(a, x);
  out.for_each_touched(
      [&](Index r, Value v) { EXPECT_NEAR(v, want[r], 1e-9); });
}

TEST(Engine, DenseFrontierRunsIpAndMatchesReference) {
  const Coo a = test_matrix();
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  const SparseVector x = sparse::random_sparse_vector(2000, 0.5, 3);
  const auto out = eng.spmv(
      Engine::Frontier::from_dense(DenseFrontier::from_sparse(x, 0.0)),
      PlainSpmv{});
  EXPECT_TRUE(out.dense);
  EXPECT_EQ(out.decision.sw, SwConfig::kIP);
  const auto want = reference(a, x);
  out.for_each_touched(
      [&](Index r, Value v) { EXPECT_NEAR(v, want[r], 1e-9); });
}

TEST(Engine, ConvertsFormatOnDataflowMismatch) {
  const Coo a = test_matrix();
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  // Dense-formatted frontier whose density demands OP.
  const SparseVector x = sparse::random_sparse_vector(2000, 0.001, 4);
  const auto out = eng.spmv(
      Engine::Frontier::from_dense(DenseFrontier::from_sparse(x, 0.0)),
      PlainSpmv{});
  EXPECT_EQ(out.decision.sw, SwConfig::kOP);
  ASSERT_EQ(eng.iterations().size(), 1u);
  EXPECT_TRUE(eng.iterations()[0].converted_frontier);
  EXPECT_GT(eng.iterations()[0].convert_cycles, 0u);
  const auto want = reference(a, x);
  out.for_each_touched(
      [&](Index r, Value v) { EXPECT_NEAR(v, want[r], 1e-9); });
}

TEST(Engine, NoConversionWhenFormatsMatch) {
  const Coo a = test_matrix();
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  const SparseVector x = sparse::random_sparse_vector(2000, 0.001, 5);
  eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
  EXPECT_FALSE(eng.iterations()[0].converted_frontier);
  EXPECT_EQ(eng.iterations()[0].convert_cycles, 0u);
}

TEST(Engine, HardwareReconfiguresAcrossIterations) {
  const Coo a = test_matrix();
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  // Iteration 1: sparse -> OP/PC|PS. Iteration 2: dense -> IP/SC|SCS.
  eng.spmv(Engine::Frontier::from_sparse(
               sparse::random_sparse_vector(2000, 0.001, 6)),
           PlainSpmv{});
  eng.spmv(Engine::Frontier::from_dense(DenseFrontier::from_sparse(
               sparse::random_sparse_vector(2000, 0.6, 7), 0.0)),
           PlainSpmv{});
  ASSERT_EQ(eng.iterations().size(), 2u);
  EXPECT_EQ(eng.iterations()[0].sw, SwConfig::kOP);
  EXPECT_EQ(eng.iterations()[1].sw, SwConfig::kIP);
  EXPECT_TRUE(eng.iterations()[1].sw_switched);
  EXPECT_TRUE(eng.iterations()[1].hw_switched);
  EXPECT_EQ(eng.machine().stats().reconfigurations, 2u);  // initial SC->PC, PC->SC
}

TEST(Engine, FixedSwDisablesSoftwareReconfig) {
  const Coo a = test_matrix();
  EngineOptions opts;
  opts.sw_reconfig = false;
  opts.fixed_sw = SwConfig::kIP;
  Engine eng(a, sim::SystemConfig::transmuter(2, 8), opts);
  // Even a very sparse frontier must run IP.
  const auto out = eng.spmv(Engine::Frontier::from_sparse(
                                sparse::random_sparse_vector(2000, 0.001, 8)),
                            PlainSpmv{});
  EXPECT_TRUE(out.dense);
  EXPECT_EQ(eng.iterations()[0].sw, SwConfig::kIP);
}

TEST(Engine, FixedHwPinsConfiguration) {
  const Coo a = test_matrix();
  EngineOptions opts;
  opts.hw_reconfig = false;
  opts.fixed_hw = sim::HwConfig::kSCS;
  opts.sw_reconfig = false;
  opts.fixed_sw = SwConfig::kIP;
  Engine eng(a, sim::SystemConfig::transmuter(2, 8), opts);
  eng.spmv(Engine::Frontier::from_dense(DenseFrontier::from_sparse(
               sparse::random_sparse_vector(2000, 0.02, 9), 0.0)),
           PlainSpmv{});
  EXPECT_EQ(eng.iterations()[0].hw, sim::HwConfig::kSCS);
  EXPECT_EQ(eng.machine().hw(), sim::HwConfig::kSCS);
}

TEST(Engine, CacheOnlyBaselineMapping) {
  const Coo a = test_matrix();
  EngineOptions opts;
  opts.hw_reconfig = false;  // no fixed_hw: IP->SC, OP->PC
  Engine eng(a, sim::SystemConfig::transmuter(2, 8), opts);
  eng.spmv(Engine::Frontier::from_sparse(
               sparse::random_sparse_vector(2000, 0.001, 10)),
           PlainSpmv{});
  EXPECT_EQ(eng.iterations()[0].hw, sim::HwConfig::kPC);
  eng.spmv(Engine::Frontier::from_dense(DenseFrontier::from_sparse(
               sparse::random_sparse_vector(2000, 0.5, 11), 0.0)),
           PlainSpmv{});
  EXPECT_EQ(eng.iterations()[1].hw, sim::HwConfig::kSC);
}

TEST(Engine, IterationLogCyclesAndEnergyPositive) {
  const Coo a = test_matrix();
  Engine eng(a, sim::SystemConfig::transmuter(2, 8));
  eng.spmv(Engine::Frontier::from_sparse(
               sparse::random_sparse_vector(2000, 0.01, 12)),
           PlainSpmv{});
  const auto& rec = eng.iterations()[0];
  EXPECT_GT(rec.cycles, 0u);
  EXPECT_GT(rec.energy_pj, 0.0);
  EXPECT_NEAR(rec.density, 0.01, 1e-6);
}

TEST(Engine, ChargeVectorPassAdvancesClock) {
  const Coo a = test_matrix(100, 500);
  Engine eng(a, sim::SystemConfig::transmuter(2, 4));
  const Cycles before = eng.total_cycles();
  eng.charge_vector_pass(100000, 2, 16);
  EXPECT_GT(eng.total_cycles(), before);
}

TEST(Engine, ClearIterationLog) {
  const Coo a = test_matrix(100, 500);
  Engine eng(a, sim::SystemConfig::transmuter(2, 4));
  eng.spmv(Engine::Frontier::from_sparse(
               sparse::random_sparse_vector(100, 0.01, 13)),
           PlainSpmv{});
  EXPECT_FALSE(eng.iterations().empty());
  eng.clear_iteration_log();
  EXPECT_TRUE(eng.iterations().empty());
}

TEST(Engine, EmptyFrontierProducesEmptyOutput) {
  const Coo a = test_matrix(100, 500);
  Engine eng(a, sim::SystemConfig::transmuter(2, 4));
  const auto out =
      eng.spmv(Engine::Frontier::from_sparse(SparseVector(100)), PlainSpmv{});
  EXPECT_EQ(out.num_touched(), 0u);
}

}  // namespace
}  // namespace cosparse::runtime
