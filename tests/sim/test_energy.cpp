#include "sim/energy.h"

#include <gtest/gtest.h>

namespace cosparse::sim {
namespace {

TEST(Energy, ZeroEventsOnlyLeakage) {
  const SystemConfig cfg = SystemConfig::transmuter(2, 4);
  EnergyModel em;
  Stats s;
  const Picojoules e = em.total(cfg, s, /*elapsed=*/1000);
  EXPECT_GT(e, 0.0);
  const Picojoules e2 = em.total(cfg, s, /*elapsed=*/2000);
  EXPECT_NEAR(e2, 2.0 * e, 1e-9);  // pure leakage scales linearly with time
}

TEST(Energy, DramDominatesPerByte) {
  const SystemConfig cfg = SystemConfig::transmuter(2, 4);
  EnergyModel em;
  Stats cache_heavy, dram_heavy;
  cache_heavy.l1_hits = 1000;
  dram_heavy.dram_read_bytes = 1000 * 64;
  EXPECT_GT(em.total(cfg, dram_heavy, 0), em.total(cfg, cache_heavy, 0));
}

TEST(Energy, SpmCheaperThanCache) {
  const SystemConfig cfg = SystemConfig::transmuter(2, 4);
  EnergyModel em;
  Stats spm, cache;
  spm.spm_accesses = 10000;
  cache.l1_hits = 10000;
  EXPECT_LT(em.total(cfg, spm, 0), em.total(cfg, cache, 0));
}

TEST(Energy, WattsConsistentWithTotal) {
  const SystemConfig cfg = SystemConfig::transmuter(2, 4);
  EnergyModel em;
  Stats s;
  s.pe_compute_cycles = 1e6;
  const Cycles elapsed = 1000000;  // 1 ms at 1 GHz
  const double w = em.watts(cfg, s, elapsed);
  const double expected =
      em.total(cfg, s, elapsed) * 1e-12 / 1e-3;  // pJ -> J over 1 ms
  EXPECT_NEAR(w, expected, 1e-12);
}

TEST(Energy, ZeroElapsedZeroWatts) {
  const SystemConfig cfg = SystemConfig::transmuter(2, 4);
  EnergyModel em;
  Stats s;
  EXPECT_DOUBLE_EQ(em.watts(cfg, s, 0), 0.0);
}

TEST(Energy, LeakageScalesWithSystemSize) {
  EnergyModel em;
  Stats s;
  const Picojoules small =
      em.total(SystemConfig::transmuter(2, 4), s, 1000);
  const Picojoules big =
      em.total(SystemConfig::transmuter(16, 16), s, 1000);
  EXPECT_GT(big, 10.0 * small);
}

}  // namespace
}  // namespace cosparse::sim
