#include "sim/stats.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cosparse::sim {
namespace {

Stats sample() {
  Stats s;
  s.pe_compute_cycles = 100;
  s.pe_mem_stall_cycles = 200;
  s.l1_hits = 80;
  s.l1_misses = 20;
  s.spm_accesses = 5;
  s.l2_hits = 15;
  s.l2_misses = 5;
  s.dram_read_bytes = 640;
  s.dram_write_bytes = 128;
  s.prefetch_lines = 4;
  s.writeback_lines = 2;
  s.xbar_transfers = 120;
  s.lcp_elements = 10;
  s.barriers = 3;
  s.reconfigurations = 1;
  s.flushed_dirty_lines = 7;
  return s;
}

TEST(Stats, HitRates) {
  const Stats s = sample();
  EXPECT_DOUBLE_EQ(s.l1_hit_rate(), 0.8);
  EXPECT_DOUBLE_EQ(s.l2_hit_rate(), 0.75);
  EXPECT_EQ(s.l1_accesses(), 100u);
  EXPECT_EQ(s.dram_bytes(), 768u);
}

TEST(Stats, EmptyRatesAreZero) {
  const Stats s;
  EXPECT_DOUBLE_EQ(s.l1_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.l2_hit_rate(), 0.0);
}

TEST(Stats, AdditionAndSubtractionRoundTrip) {
  const Stats a = sample();
  Stats b = sample();
  b += a;
  EXPECT_EQ(b.l1_hits, 160u);
  EXPECT_DOUBLE_EQ(b.pe_compute_cycles, 200.0);
  const Stats diff = b - a;
  EXPECT_EQ(diff.l1_hits, a.l1_hits);
  EXPECT_EQ(diff.dram_read_bytes, a.dram_read_bytes);
  EXPECT_EQ(diff.reconfigurations, a.reconfigurations);
  EXPECT_DOUBLE_EQ(diff.pe_mem_stall_cycles, a.pe_mem_stall_cycles);
}

TEST(Stats, PrintMentionsKeyCounters) {
  std::ostringstream os;
  sample().print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("L1"), std::string::npos);
  EXPECT_NE(out.find("DRAM"), std::string::npos);
  EXPECT_NE(out.find("reconfigurations"), std::string::npos);
}

}  // namespace
}  // namespace cosparse::sim
