// Validates the trace-based analytic model against the execution-driven
// simulator: extrapolating a measured run to another system size must land
// in the same ballpark as actually simulating that size.
#include "sim/analytic.h"

#include <gtest/gtest.h>

#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "sim/machine.h"
#include "sparse/generate.h"

namespace cosparse::sim {
namespace {

struct KernelResult {
  Cycles cycles = 0;
  Stats stats;
};

KernelResult run_ip(const sparse::Coo& m, const kernels::DenseFrontier& x,
           const SystemConfig& cfg) {
  Machine machine(cfg, HwConfig::kSC);
  kernels::AddressMap amap(machine);
  const auto part =
      kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), 0);
  kernels::run_inner_product(machine, amap, part, x, kernels::PlainSpmv{});
  return {machine.cycles(), machine.stats()};
}

KernelResult run_op(const sparse::Coo& m, const sparse::SparseVector& x,
           const SystemConfig& cfg) {
  Machine machine(cfg, HwConfig::kPC);
  kernels::AddressMap amap(machine);
  const auto striped = kernels::OpStripedMatrix::build(m, cfg.num_tiles);
  kernels::run_outer_product(machine, amap, striped, x, nullptr,
                             kernels::PlainSpmv{});
  return {machine.cycles(), machine.stats()};
}

TEST(Analytic, SelfExtrapolationIsSane) {
  // Extrapolating to the measured system itself must stay within a small
  // factor of the measurement (the bounds ignore latency overlap, so they
  // can undershoot; they must never explode).
  const auto m = sparse::uniform_random(20000, 20000, 200000, 1);
  const auto cfg = SystemConfig::transmuter(2, 8);
  const auto x = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(20000, 2));
  const KernelResult r = run_ip(m, x, cfg);
  const auto p = extrapolate(cfg, r.stats, r.cycles, cfg);
  EXPECT_GT(p.cycles, r.cycles / 4);
  EXPECT_LT(p.cycles, r.cycles * 4);
}

TEST(Analytic, PredictsScalingDirectionForIp) {
  const auto m = sparse::uniform_random(20000, 20000, 200000, 1);
  const auto small = SystemConfig::transmuter(2, 8);
  const auto big = SystemConfig::transmuter(4, 16);
  const auto x = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(20000, 2));
  const KernelResult measured = run_ip(m, x, small);
  const KernelResult actual_big = run_ip(m, x, big);
  const auto predicted = extrapolate(small, measured.stats, measured.cycles,
                                     big);
  // Direction: the bigger system must be predicted faster.
  EXPECT_LT(predicted.cycles, measured.cycles);
  // Magnitude: the extrapolation cannot see that the target's larger
  // caches cut miss rates, so it is a *conservative* (upper) estimate —
  // allow a generous band but require the right order of magnitude.
  const double ratio = static_cast<double>(predicted.cycles) /
                       static_cast<double>(actual_big.cycles);
  EXPECT_GT(ratio, 0.5) << predicted.cycles << " vs " << actual_big.cycles;
  EXPECT_LT(ratio, 8.0) << predicted.cycles << " vs " << actual_big.cycles;
}

TEST(Analytic, LcpBoundScalesWithTilesForOp) {
  const auto m = sparse::uniform_random(20000, 20000, 200000, 3);
  const auto cfg = SystemConfig::transmuter(2, 8);
  const auto xs = sparse::random_sparse_vector(20000, 0.05, 4);
  const KernelResult measured = run_op(m, xs, cfg);
  const auto two_tiles =
      extrapolate(cfg, measured.stats, measured.cycles, cfg);
  const auto eight_tiles = extrapolate(
      cfg, measured.stats, measured.cycles, SystemConfig::transmuter(8, 8));
  EXPECT_LT(eight_tiles.lcp_bound, two_tiles.lcp_bound);
}

TEST(Analytic, DramBoundIndependentOfTopology) {
  Stats s;
  s.dram_read_bytes = 128u * 1000u;
  const auto a =
      extrapolate(SystemConfig::transmuter(2, 8), s, 1000,
                  SystemConfig::transmuter(2, 8));
  const auto b =
      extrapolate(SystemConfig::transmuter(2, 8), s, 1000,
                  SystemConfig::transmuter(16, 16));
  EXPECT_DOUBLE_EQ(a.dram_bound, b.dram_bound);
  EXPECT_DOUBLE_EQ(a.dram_bound, 1000.0);
}

TEST(Analytic, SerialOverheadUsesTargetReconfigCost) {
  Stats s;
  s.reconfigurations = 10;
  SystemConfig target = SystemConfig::transmuter(2, 8);
  target.reconfig_cycles = 1000;
  const auto p =
      extrapolate(SystemConfig::transmuter(2, 8), s, 1, target);
  EXPECT_GE(p.serial_cycles, 10000.0);
}

}  // namespace
}  // namespace cosparse::sim
