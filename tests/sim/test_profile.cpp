// The MemProfiler contract: region-attributed counters are the *same*
// increments sim::Machine applies to its global Stats, keyed by region —
// so summed over every region and tile they reproduce the Stats counters
// bit-exactly, in every configuration and across reconfiguration flushes.
#include <gtest/gtest.h>

#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sim/machine.h"
#include "sim/profile.h"
#include "sparse/generate.h"

namespace cosparse::sim {
namespace {

void expect_matches_stats(const MemProfiler& prof, const Stats& s) {
  const RegionCounters t = prof.total();
  EXPECT_EQ(t.l1_hits, s.l1_hits);
  EXPECT_EQ(t.l1_misses, s.l1_misses);
  EXPECT_EQ(t.spm_accesses, s.spm_accesses);
  EXPECT_EQ(t.l2_hits, s.l2_hits);
  EXPECT_EQ(t.l2_misses, s.l2_misses);
  EXPECT_EQ(t.dram_read_bytes, s.dram_read_bytes);
  EXPECT_EQ(t.dram_write_bytes, s.dram_write_bytes);
  EXPECT_EQ(t.prefetch_lines, s.prefetch_lines);
  EXPECT_EQ(t.writeback_lines, s.writeback_lines);
  EXPECT_EQ(t.xbar_transfers, s.xbar_transfers);
  EXPECT_EQ(t.flushed_dirty_lines, s.flushed_dirty_lines);
}

constexpr Index kDim = 2048;
constexpr std::uint64_t kNnz = 20000;

class ProfileAllConfigs : public ::testing::TestWithParam<HwConfig> {};

TEST_P(ProfileAllConfigs, IpKernelSumsMatchStats) {
  const auto cfg = SystemConfig::transmuter(2, 4);
  Machine m(cfg, GetParam());
  MemProfiler prof;
  m.set_profiler(&prof);
  kernels::AddressMap amap(m);
  const auto mat = sparse::uniform_random(kDim, kDim, kNnz, 11,
                                          sparse::ValueDist::kUniform01);
  const auto part =
      kernels::IpPartitionedMatrix::build(mat, cfg.num_pes(), 512, true);
  const auto x = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(kDim, 12));
  kernels::run_inner_product(m, amap, part, x, kernels::PlainSpmv{});
  expect_matches_stats(prof, m.stats());
}

TEST_P(ProfileAllConfigs, OpKernelSumsMatchStats) {
  const auto cfg = SystemConfig::transmuter(2, 4);
  Machine m(cfg, GetParam());
  MemProfiler prof;
  m.set_profiler(&prof);
  kernels::AddressMap amap(m);
  const auto mat = sparse::uniform_random(kDim, kDim, kNnz, 13,
                                          sparse::ValueDist::kUniform01);
  const auto striped =
      kernels::OpStripedMatrix::build(mat, cfg.num_tiles, true);
  const auto x = sparse::random_sparse_vector(kDim, 0.02, 14);
  kernels::run_outer_product(m, amap, striped, x, nullptr,
                             kernels::PlainSpmv{});
  expect_matches_stats(prof, m.stats());
}

TEST_P(ProfileAllConfigs, ReconfigureFlushStaysAttributed) {
  // Dirty lines in the caches, then a flush into every other config: the
  // flushed_dirty_lines and dram_write_bytes the flush produces must stay
  // accounted per region.
  Machine m(SystemConfig::transmuter(2, 4), GetParam());
  MemProfiler prof;
  m.set_profiler(&prof);
  const Addr a = m.alloc(1 << 15, "scratch");
  for (Addr off = 0; off < (1 << 15); off += 64) m.mem_write(0, a + off, 8);
  for (auto next :
       {HwConfig::kPC, HwConfig::kPS, HwConfig::kSCS, HwConfig::kSC}) {
    if (next == GetParam()) continue;
    m.reconfigure(next);
  }
  EXPECT_GT(m.stats().flushed_dirty_lines, 0u);
  expect_matches_stats(prof, m.stats());
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ProfileAllConfigs,
                         ::testing::Values(HwConfig::kSC, HwConfig::kSCS,
                                           HwConfig::kPC, HwConfig::kPS),
                         [](const ::testing::TestParamInfo<HwConfig>& info) {
                           return to_string(info.param);
                         });

TEST(Profile, EngineFullFlowSumsMatchStats) {
  // The real per-iteration flow — decisions, frontier conversions,
  // reconfiguration flushes, DMA — through a reconfiguring engine.
  const auto mat = sparse::uniform_random(kDim, kDim, kNnz, 21,
                                          sparse::ValueDist::kUniform01);
  runtime::Engine eng(mat, SystemConfig::transmuter(2, 4));
  MemProfiler prof;
  eng.machine().set_profiler(&prof);

  const auto sv = sparse::random_sparse_vector(kDim, 0.001, 22);
  eng.spmv(runtime::Engine::Frontier::from_sparse(sv), kernels::PlainSpmv{});
  const auto dv = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(kDim, 23));
  eng.spmv(runtime::Engine::Frontier::from_dense(dv), kernels::PlainSpmv{});
  eng.spmv(runtime::Engine::Frontier::from_sparse(sv), kernels::PlainSpmv{});

  EXPECT_GT(eng.machine().stats().reconfigurations, 0u);
  expect_matches_stats(prof, eng.machine().stats());
}

TEST(Profile, SequentialMachinesAccumulateByLabel) {
  // One profiler across two machines: the address space restarts at zero,
  // but label-keyed counters keep accumulating (the bench summation mode).
  MemProfiler prof;
  const auto cfg = SystemConfig::transmuter(2, 4);
  std::uint64_t after_first = 0;
  {
    Machine m(cfg, HwConfig::kSC);
    m.set_profiler(&prof);
    const Addr a = m.alloc(4096, "work");
    for (Addr off = 0; off < 4096; off += 64) m.mem_read(0, a + off, 8);
    after_first = prof.find_region("work")->total().l1_misses;
    EXPECT_GT(after_first, 0u);
  }
  {
    Machine m(cfg, HwConfig::kSC);
    m.set_profiler(&prof);
    const Addr a = m.alloc(4096, "work");
    for (Addr off = 0; off < 4096; off += 64) m.mem_read(0, a + off, 8);
  }
  EXPECT_GT(prof.find_region("work")->total().l1_misses, after_first);
}

TEST(Profile, UnlabeledAllocationsBucketTogether) {
  Machine m(SystemConfig::transmuter(2, 4), HwConfig::kSC);
  MemProfiler prof;
  m.set_profiler(&prof);
  const Addr a = m.alloc(4096);  // no label
  m.mem_read(0, a, 8);
  const MemProfiler::Region* r = prof.find_region("unlabeled");
  ASSERT_NE(r, nullptr);
  EXPECT_GT(r->total().l1_misses + r->total().l1_hits, 0u);
  expect_matches_stats(prof, m.stats());
}

TEST(Profile, ReuseDistanceSamplesRepeatAccesses) {
  Machine m(SystemConfig::transmuter(1, 2), HwConfig::kSC);
  MemProfiler prof(/*sample_period=*/1);
  m.set_profiler(&prof);
  const Addr a = m.alloc(64, "hot");
  for (int i = 0; i < 10; ++i) m.mem_read(0, a, 8);
  const MemProfiler::Region* r = prof.find_region("hot");
  ASSERT_NE(r, nullptr);
  // 10 uses of one tracked line -> 9 recorded reuse distances.
  EXPECT_EQ(r->reuse_samples, 9u);
}

TEST(Profile, ToJsonTotalsMirrorStatsNames) {
  Machine m(SystemConfig::transmuter(2, 4), HwConfig::kSC);
  MemProfiler prof;
  m.set_profiler(&prof);
  const Addr a = m.alloc(8192, "x");
  for (Addr off = 0; off < 8192; off += 64) m.mem_read(0, a + off, 8);
  const Json profile = prof.to_json();
  const Json stats = m.stats().to_json();
  const Json* totals = profile.find("totals");
  ASSERT_NE(totals, nullptr);
  // Every memory_profile total that shares a name with a Stats counter
  // must equal it exactly (the check_report validator enforces the same).
  std::size_t shared = 0;
  for (const auto& [name, value] : totals->members()) {
    const Json* g = stats.find(name);
    if (g == nullptr) continue;
    ++shared;
    EXPECT_EQ(value.as_int(), g->as_int()) << name;
  }
  EXPECT_EQ(shared, 11u);  // the mirrored counter set
}

}  // namespace
}  // namespace cosparse::sim
