// Parameterized checks that hold across all four memory configurations,
// plus config-specific visibility rules spelled out in one place.
#include <gtest/gtest.h>

#include "sim/machine.h"

namespace cosparse::sim {
namespace {

class MachineAllConfigs : public ::testing::TestWithParam<HwConfig> {};

TEST_P(MachineAllConfigs, WarmRereadIsCheaperThanCold) {
  Machine m(SystemConfig::transmuter(2, 4), GetParam());
  const Addr a = m.alloc(64, "x");
  m.mem_read(0, a, 8);
  const Cycles cold = m.cycles();
  m.mem_read(0, a, 8);
  const Cycles warm = m.cycles() - cold;
  EXPECT_GT(cold, warm * 5);
}

TEST_P(MachineAllConfigs, WritesAreBuffered) {
  // A store miss must not stall like a load miss (store-buffer model).
  Machine m(SystemConfig::transmuter(2, 4), GetParam());
  const Addr a = m.alloc(1 << 14, "buf");
  const Cycles before = m.cycles();
  m.mem_write(0, a, 8);
  EXPECT_LE(m.cycles() - before, 2u);
  // ...but the dirty line exists: flushing on reconfigure drains it.
  const auto wb_before = m.stats().dram_write_bytes;
  m.reconfigure(GetParam() == HwConfig::kSC ? HwConfig::kPC : HwConfig::kSC);
  EXPECT_GT(m.stats().dram_write_bytes, wb_before);
}

TEST_P(MachineAllConfigs, RooflineAppliesEverywhere) {
  Machine m(SystemConfig::transmuter(2, 4), GetParam());
  m.dma_traffic(128u * 100000u, false);  // 100k cycles of bandwidth
  EXPECT_GE(m.cycles(), 100000u);
}

TEST_P(MachineAllConfigs, ReconfigureRoundTripRestoresConfig) {
  const HwConfig start = GetParam();
  Machine m(SystemConfig::transmuter(2, 4), start);
  for (auto next : {HwConfig::kSC, HwConfig::kSCS, HwConfig::kPC,
                    HwConfig::kPS}) {
    m.reconfigure(next);
    EXPECT_EQ(m.hw(), next);
  }
  m.reconfigure(start);
  EXPECT_EQ(m.hw(), start);
  EXPECT_EQ(m.stats().reconfigurations, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, MachineAllConfigs,
                         ::testing::Values(HwConfig::kSC, HwConfig::kSCS,
                                           HwConfig::kPC, HwConfig::kPS),
                         [](const ::testing::TestParamInfo<HwConfig>& info) {
                           return to_string(info.param);
                         });

TEST(MachineVisibility, SharingMatrix) {
  // One table of truth for "who sees whose data" per configuration:
  //   SC/SCS: L1 shared within tile, L2 shared globally.
  //   PC:     L1 private per PE,     L2 shared within tile only.
  //   PS:     no L1 cache,           L2 shared within tile only.
  struct Case {
    HwConfig hw;
    bool l1_shared_in_tile;
    bool l2_shared_across_tiles;
  };
  for (const Case& c : {Case{HwConfig::kSC, true, true},
                        Case{HwConfig::kSCS, true, true},
                        Case{HwConfig::kPC, false, false},
                        Case{HwConfig::kPS, false, false}}) {
    Machine m(SystemConfig::transmuter(2, 4), c.hw);
    const Addr a = m.alloc(64, "x");
    m.mem_read(0, a, 8);  // PE0, tile 0
    const auto after_first = m.stats();

    m.mem_read(1, a, 8);  // PE1, tile 0
    const bool l1_hit = m.stats().l1_hits > after_first.l1_hits;
    if (c.hw == HwConfig::kPS) {
      EXPECT_EQ(m.stats().l1_accesses(), 0u) << to_string(c.hw);
    } else {
      EXPECT_EQ(l1_hit, c.l1_shared_in_tile) << to_string(c.hw);
    }

    const auto before_cross = m.stats();
    m.mem_read(4, a, 8);  // PE0 of tile 1
    const bool l2_hit = m.stats().l2_hits > before_cross.l2_hits;
    EXPECT_EQ(l2_hit, c.l2_shared_across_tiles) << to_string(c.hw);
  }
}

}  // namespace
}  // namespace cosparse::sim
