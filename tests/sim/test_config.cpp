#include "sim/config.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse::sim {
namespace {

TEST(SystemConfig, TransmuterDefaultsMatchTableTwo) {
  const auto cfg = SystemConfig::transmuter(16, 16);
  EXPECT_EQ(cfg.num_pes(), 256u);
  EXPECT_DOUBLE_EQ(cfg.freq_ghz, 1.0);
  EXPECT_EQ(cfg.bank_bytes, 4096u);
  EXPECT_EQ(cfg.line_bytes, 64u);
  EXPECT_EQ(cfg.associativity, 4u);
  EXPECT_EQ(cfg.dram_channels, 16u);
  EXPECT_DOUBLE_EQ(cfg.dram_bytes_per_cycle_per_channel, 8.0);
  EXPECT_DOUBLE_EQ(cfg.dram_latency_min, 80.0);
  EXPECT_DOUBLE_EQ(cfg.dram_latency_max, 150.0);
  EXPECT_DOUBLE_EQ(cfg.reconfig_cycles, 10.0);
}

TEST(SystemConfig, DerivedCapacities) {
  const auto cfg = SystemConfig::transmuter(4, 8);
  EXPECT_EQ(cfg.l1_banks_per_tile(), 8u);
  EXPECT_EQ(cfg.l1_bytes_per_tile(), 32u * 1024u);
  EXPECT_EQ(cfg.l2_bytes_total(), 128u * 1024u);
  EXPECT_EQ(cfg.scs_spm_bytes_per_tile(), 16u * 1024u);
  EXPECT_EQ(cfg.ps_spm_bytes_per_pe(), 4096u);
  EXPECT_DOUBLE_EQ(cfg.dram_peak_bytes_per_cycle(), 128.0);
  EXPECT_EQ(cfg.name(), "4x8");
}

TEST(SystemConfig, LcpCostGrowsWithPes) {
  EXPECT_LT(SystemConfig::transmuter(4, 8).lcp_cycles_per_element(),
            SystemConfig::transmuter(4, 32).lcp_cycles_per_element());
}

TEST(SystemConfig, RejectsInvalidShapes) {
  EXPECT_THROW(SystemConfig::transmuter(0, 8), Error);
  EXPECT_THROW(SystemConfig::transmuter(4, 1), Error);
  EXPECT_THROW(SystemConfig::transmuter(4, 7), Error);  // odd: SCS can't split
}

TEST(HwConfig, NamesRoundTrip) {
  for (auto c : {HwConfig::kSC, HwConfig::kSCS, HwConfig::kPC,
                 HwConfig::kPS}) {
    EXPECT_EQ(hw_config_from_string(to_string(c)), c);
  }
  EXPECT_EQ(hw_config_from_string("scs"), HwConfig::kSCS);  // case-insensitive
  EXPECT_THROW(hw_config_from_string("XYZ"), Error);
}

TEST(HwConfig, Predicates) {
  EXPECT_TRUE(is_shared(HwConfig::kSC));
  EXPECT_TRUE(is_shared(HwConfig::kSCS));
  EXPECT_FALSE(is_shared(HwConfig::kPC));
  EXPECT_FALSE(is_shared(HwConfig::kPS));
  EXPECT_TRUE(has_l1_spm(HwConfig::kSCS));
  EXPECT_TRUE(has_l1_spm(HwConfig::kPS));
  EXPECT_FALSE(has_l1_spm(HwConfig::kSC));
  EXPECT_FALSE(has_l1_spm(HwConfig::kPC));
}

}  // namespace
}  // namespace cosparse::sim
