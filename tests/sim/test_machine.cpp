#include "sim/machine.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse::sim {
namespace {

SystemConfig small_cfg() { return SystemConfig::transmuter(2, 4); }

TEST(Machine, AllocReturnsDisjointLineAlignedRanges) {
  Machine m(small_cfg(), HwConfig::kSC);
  const Addr a = m.alloc(100, "a");
  const Addr b = m.alloc(10, "b");
  EXPECT_EQ(a % kCacheLineBytes, 0u);
  EXPECT_EQ(b % kCacheLineBytes, 0u);
  EXPECT_GE(b, a + 100);
  // Guard line: end of `a` and start of `b` never share a cache line.
  EXPECT_GT(b / kCacheLineBytes, (a + 99) / kCacheLineBytes);
}

TEST(Machine, ComputeAdvancesOnlyThatPe) {
  Machine m(small_cfg(), HwConfig::kSC);
  m.compute(0, 100.0);
  EXPECT_EQ(m.cycles(), 100u);
  m.compute(1, 50.0);
  EXPECT_EQ(m.cycles(), 100u);  // max over PEs
}

TEST(Machine, MemReadChargesMoreOnColdMiss) {
  Machine m(small_cfg(), HwConfig::kSC);
  const Addr a = m.alloc(4096, "buf");
  m.mem_read(0, a, 8);
  const Cycles cold = m.cycles();
  EXPECT_GT(cold, 50u);  // DRAM latency charged
  m.mem_read(0, a, 8);
  const Cycles warm = m.cycles() - cold;
  EXPECT_LT(warm, 10u);  // L1 hit
  EXPECT_EQ(m.stats().l1_hits, 1u);
  EXPECT_EQ(m.stats().l1_misses, 1u);
}

TEST(Machine, SharedL1VisibleAcrossPesOfATile) {
  Machine m(small_cfg(), HwConfig::kSC);
  const Addr a = m.alloc(64, "x");
  m.mem_read(0, a, 8);  // PE0 (tile 0) misses
  m.mem_read(1, a, 8);  // PE1 (tile 0) hits the shared L1
  EXPECT_EQ(m.stats().l1_hits, 1u);
}

TEST(Machine, PrivateL1NotSharedInPC) {
  Machine m(small_cfg(), HwConfig::kPC);
  const Addr a = m.alloc(64, "x");
  m.mem_read(0, a, 8);
  m.mem_read(1, a, 8);  // PE1 misses its own private L1...
  EXPECT_EQ(m.stats().l1_hits, 0u);
  EXPECT_EQ(m.stats().l1_misses, 2u);
  // ...but hits the per-tile L2 warmed by PE0.
  EXPECT_EQ(m.stats().l2_hits, 1u);
}

TEST(Machine, CrossTileSharingOnlyThroughSharedL2) {
  Machine m(small_cfg(), HwConfig::kSC);
  const Addr a = m.alloc(64, "x");
  m.mem_read(0, a, 8);               // tile 0
  const auto before = m.stats();
  m.mem_read(4, a, 8);               // tile 1: L1 miss, global L2 hit
  EXPECT_EQ(m.stats().l1_misses, before.l1_misses + 1);
  EXPECT_EQ(m.stats().l2_hits, before.l2_hits + 1);
}

TEST(Machine, PrivateL2NotSharedAcrossTilesInPC) {
  Machine m(small_cfg(), HwConfig::kPC);
  const Addr a = m.alloc(64, "x");
  m.mem_read(0, a, 8);  // tile 0
  m.mem_read(4, a, 8);  // tile 1: own L2, cold
  EXPECT_EQ(m.stats().l2_hits, 0u);
  EXPECT_EQ(m.stats().l2_misses, 2u);
}

TEST(Machine, SpmOnlyInSpmConfigs) {
  Machine sc(small_cfg(), HwConfig::kSC);
  EXPECT_EQ(sc.spm_bytes_per_tile(), 0u);
  EXPECT_EQ(sc.spm_bytes_per_pe(), 0u);
  EXPECT_THROW(sc.spm_read(0, 8), Error);

  Machine scs(small_cfg(), HwConfig::kSCS);
  EXPECT_EQ(scs.spm_bytes_per_tile(), 2u * 4096u);  // P/2 banks of 4 kB
  scs.spm_read(0, 8);
  EXPECT_EQ(scs.stats().spm_accesses, 1u);

  Machine ps(small_cfg(), HwConfig::kPS);
  EXPECT_EQ(ps.spm_bytes_per_pe(), 4096u);
  ps.spm_write(0, 8);
  EXPECT_EQ(ps.stats().spm_accesses, 1u);
}

TEST(Machine, SpmCheaperThanColdMemory) {
  Machine m(small_cfg(), HwConfig::kSCS);
  const Addr a = m.alloc(64, "x");
  m.spm_read(0, 8);
  const Cycles spm_time = m.cycles();
  m.mem_read(1, a, 8);  // cold: goes to DRAM
  const Cycles mem_time = m.cycles();
  EXPECT_LT(spm_time, 5u);
  EXPECT_GT(mem_time, spm_time * 10);
}

TEST(Machine, TileBarrierEqualizesWithinTileOnly) {
  Machine m(small_cfg(), HwConfig::kSC);
  m.compute(0, 100.0);
  m.compute(4, 7.0);  // tile 1
  m.tile_barrier(0);
  m.compute(1, 1.0);  // PE1 now starts from 100
  EXPECT_EQ(m.cycles(), 101u);
  // Tile 1 unaffected by tile 0's barrier: global barrier then syncs all.
  m.global_barrier();
  m.compute(4, 2.0);
  EXPECT_EQ(m.cycles(), 103u);
}

TEST(Machine, PsRoutesStraightToL2) {
  Machine m(small_cfg(), HwConfig::kPS);
  const Addr a = m.alloc(64, "x");
  m.mem_read(0, a, 8);
  EXPECT_EQ(m.stats().l1_accesses(), 0u);
  EXPECT_EQ(m.stats().l2_misses, 1u);
  m.mem_read(0, a, 8);
  EXPECT_EQ(m.stats().l2_hits, 1u);
}

TEST(Machine, ReconfigureFlushesAndCharges) {
  Machine m(small_cfg(), HwConfig::kSC);
  const Addr a = m.alloc(4096, "buf");
  for (Addr off = 0; off < 1024; off += 64) m.mem_write(0, a + off, 8);
  const Cycles before = m.cycles();
  const auto wb_before = m.stats().dram_write_bytes;
  m.reconfigure(HwConfig::kPC);
  EXPECT_EQ(m.hw(), HwConfig::kPC);
  EXPECT_GE(m.cycles(), before + 10);  // >= the 10-cycle mode switch
  EXPECT_GT(m.stats().dram_write_bytes, wb_before);  // dirty lines drained
  EXPECT_EQ(m.stats().reconfigurations, 1u);
  // Caches are cold after reconfiguration (stats are cumulative; compare
  // against the pre-read snapshot).
  const auto hits_before = m.stats().l1_hits;
  m.mem_read(0, a, 8);
  EXPECT_EQ(m.stats().l1_hits, hits_before);
  EXPECT_GT(m.stats().l1_misses, 0u);
}

TEST(Machine, ReconfigureWithCleanCachesIsCheap) {
  Machine m(small_cfg(), HwConfig::kSC);
  const Cycles before = m.cycles();
  m.reconfigure(HwConfig::kSCS);
  EXPECT_LE(m.cycles(), before + 11);
}

TEST(Machine, RooflineBoundsCycles) {
  Machine m(small_cfg(), HwConfig::kSC);
  // Pure DMA traffic with idle PEs: elapsed time must still cover the
  // bandwidth cost.
  m.dma_traffic(1280000, true);  // 1.28 MB / 128 B-per-cycle = 10k cycles
  EXPECT_GE(m.cycles(), 10000u);
}

TEST(Machine, LcpEmitSerializesPerTile) {
  Machine m(small_cfg(), HwConfig::kPC);
  for (int i = 0; i < 100; ++i) m.lcp_emit(0, 12);
  m.tile_barrier(0);
  // 100 elements x lcp_cycles_per_element(), a queue-count-dependent cost.
  const auto expected = static_cast<Cycles>(
      100.0 * small_cfg().lcp_cycles_per_element());
  EXPECT_GE(m.cycles(), expected);
  EXPECT_EQ(m.stats().lcp_elements, 100u);
}

TEST(Machine, SharedModeChargesArbitration) {
  // Same access pattern, SC vs PC: the shared configuration pays crossbar
  // arbitration, the private one has direct access.
  const SystemConfig cfg = SystemConfig::transmuter(1, 8);
  Machine shared(cfg, HwConfig::kSC);
  Machine priv(cfg, HwConfig::kPC);
  const Addr a1 = shared.alloc(64, "x");
  const Addr a2 = priv.alloc(64, "x");
  shared.mem_read(0, a1, 8);
  priv.mem_read(0, a2, 8);
  shared.mem_read(0, a1, 8);  // L1 hit with arbitration
  priv.mem_read(0, a2, 8);    // L1 hit direct
  const double shared_hit =
      static_cast<double>(shared.cycles());
  const double priv_hit = static_cast<double>(priv.cycles());
  // Not a strict per-access comparison (cold miss dominates), but stats
  // must show the xbar being exercised only in shared mode L1.
  EXPECT_GT(shared.stats().xbar_transfers, priv.stats().xbar_transfers);
  (void)shared_hit;
  (void)priv_hit;
}

TEST(Machine, EnergyPositiveAndScalesWithWork) {
  Machine m(small_cfg(), HwConfig::kSC);
  const Addr a = m.alloc(1 << 16, "buf");
  for (Addr off = 0; off < (1 << 14); off += 64) m.mem_read(0, a + off, 8);
  const Picojoules e1 = m.energy_pj();
  EXPECT_GT(e1, 0.0);
  for (Addr off = 0; off < (1 << 14); off += 64) m.mem_read(1, a + off, 8);
  EXPECT_GT(m.energy_pj(), e1);
}

}  // namespace
}  // namespace cosparse::sim
