#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sim/machine.h"
#include "sparse/generate.h"

namespace cosparse::sim {
namespace {

/// Asserts that the element-wise sum of tile_stats() reproduces stats():
/// bit-exact for the integer counters, up to summation order for the cycle
/// doubles.
void expect_tiles_sum_to_global(const Machine& m) {
  ASSERT_EQ(m.tile_stats().size(),
            static_cast<std::size_t>(m.num_tiles()));
  Stats sum;
  for (const Stats& t : m.tile_stats()) sum += t;

  std::vector<std::pair<std::string, double>> global_counters;
  m.stats().for_each_counter([&](std::string_view name, double v) {
    global_counters.emplace_back(std::string(name), v);
  });
  std::size_t i = 0;
  sum.for_each_counter([&](std::string_view name, double v) {
    ASSERT_LT(i, global_counters.size());
    EXPECT_EQ(global_counters[i].first, name);
    const double g = global_counters[i].second;
    // pe_*_cycles are doubles accumulated per tile; everything else is an
    // integer counter and must match exactly.
    if (name == "pe_compute_cycles" || name == "pe_mem_stall_cycles") {
      EXPECT_NEAR(v, g, 1e-9 * std::max(1.0, std::abs(g))) << name;
    } else {
      EXPECT_EQ(v, g) << name;
    }
    ++i;
  });
  EXPECT_EQ(i, global_counters.size());

  // The integer view must also agree field-by-field (not just as doubles).
  EXPECT_EQ(sum.l1_hits, m.stats().l1_hits);
  EXPECT_EQ(sum.l2_misses, m.stats().l2_misses);
  EXPECT_EQ(sum.dram_read_bytes, m.stats().dram_read_bytes);
  EXPECT_EQ(sum.dram_write_bytes, m.stats().dram_write_bytes);
  EXPECT_EQ(sum.barriers, m.stats().barriers);
  EXPECT_EQ(sum.reconfigurations, m.stats().reconfigurations);
  EXPECT_EQ(sum.flushed_dirty_lines, m.stats().flushed_dirty_lines);
}

TEST(TileStats, FreshMachineIsAllZero) {
  const Machine m(SystemConfig::transmuter(2, 4), HwConfig::kSC);
  expect_tiles_sum_to_global(m);
  EXPECT_DOUBLE_EQ(m.load_imbalance(), 0.0);
}

TEST(TileStats, SumToGlobalUnderSharedCacheTraffic) {
  Machine m(SystemConfig::transmuter(2, 4), HwConfig::kSC);
  const Addr base = m.alloc(1 << 20, "buf");
  for (std::uint32_t pe = 0; pe < m.num_pes(); ++pe) {
    for (std::uint32_t k = 0; k < 64; ++k) {
      // Skewed access pattern: each PE reads its own stride plus a shared
      // prefix, so tiles see different hit rates.
      m.mem_read(pe, base + (pe * 64 + k) * 64, 8);
      m.mem_read(pe, base + k * 8, 8);
      m.compute(pe, 2.0 + pe);
    }
    m.mem_write(pe, base + pe * 512, 8);
  }
  m.dma_traffic(12345, /*write=*/false);  // odd size: uneven split paths
  m.dma_traffic(777, /*write=*/true);
  m.global_barrier();
  expect_tiles_sum_to_global(m);
  EXPECT_GE(m.load_imbalance(), 1.0);
}

TEST(TileStats, SumToGlobalAcrossReconfigurationIntoPrivateSpm) {
  Machine m(SystemConfig::transmuter(2, 4), HwConfig::kSC);
  const Addr base = m.alloc(1 << 18, "buf");
  for (std::uint32_t pe = 0; pe < m.num_pes(); ++pe) {
    m.mem_write(pe, base + pe * 256, 8);  // dirty lines to flush
  }
  m.reconfigure(HwConfig::kPS);
  ASSERT_EQ(m.hw(), HwConfig::kPS);
  for (std::uint32_t pe = 0; pe < m.num_pes(); ++pe) {
    m.spm_write(pe, 8);
    m.spm_read(pe, 8);
    m.mem_read(pe, base + pe * 128, 8);
    m.compute(pe, 3.0);
  }
  m.global_barrier();
  expect_tiles_sum_to_global(m);
  EXPECT_GT(m.stats().reconfigurations, 0u);
  EXPECT_GT(m.stats().flushed_dirty_lines, 0u);
  EXPECT_GT(m.stats().spm_accesses, 0u);
}

/// End-to-end: a reconfiguring engine run (the quickstart shape) keeps the
/// invariant through kernels, conversions, DMA and reconfigure flushes.
TEST(TileStats, SumToGlobalAfterEngineRun) {
  const auto a = sparse::uniform_random(2000, 2000, 30000, 7,
                                        sparse::ValueDist::kUniform01);
  runtime::Engine eng(a, SystemConfig::transmuter(2, 8));
  auto f = runtime::Engine::Frontier::from_sparse(
      sparse::random_sparse_vector(2000, 0.002, 3));
  for (int i = 0; i < 4; ++i) {
    const auto out = eng.spmv(f, kernels::PlainSpmv{});
    kernels::DenseFrontier next(eng.dimension(), 0.0);
    out.for_each_touched([&](Index r, Value v) { next.set(r, v); });
    f = runtime::Engine::Frontier::from_dense(std::move(next));
  }
  expect_tiles_sum_to_global(eng.machine());
  EXPECT_GE(eng.machine().load_imbalance(), 1.0);
}

}  // namespace
}  // namespace cosparse::sim
