#include "sim/dram.h"

#include <gtest/gtest.h>

namespace cosparse::sim {
namespace {

TEST(Dram, LatencyWithinConfiguredBounds) {
  const SystemConfig cfg = SystemConfig::transmuter(4, 8);
  Dram d(cfg);
  Stats s;
  for (int i = 0; i < 100; ++i) {
    const double lat = d.access(64, false, /*now=*/i * 1000.0, s);
    EXPECT_GE(lat, cfg.dram_latency_min);
    EXPECT_LE(lat, cfg.dram_latency_max);
  }
}

TEST(Dram, LatencyRisesWithUtilization) {
  const SystemConfig cfg = SystemConfig::transmuter(4, 8);
  Dram low(cfg), high(cfg);
  Stats s;
  // Low pressure: few bytes over a long time.
  low.traffic(64, false, s);
  const double lat_low = low.access(64, false, /*now=*/1e9, s);
  // High pressure: many bytes in a short time.
  high.traffic(100000000, false, s);
  const double lat_high = high.access(64, false, /*now=*/1000.0, s);
  EXPECT_GT(lat_high, lat_low);
  EXPECT_DOUBLE_EQ(lat_high, cfg.dram_latency_max);
}

TEST(Dram, TrafficAccountedByDirection) {
  const SystemConfig cfg = SystemConfig::transmuter(4, 8);
  Dram d(cfg);
  Stats s;
  d.traffic(100, false, s);
  d.traffic(50, true, s);
  EXPECT_EQ(s.dram_read_bytes, 100u);
  EXPECT_EQ(s.dram_write_bytes, 50u);
  EXPECT_EQ(d.total_bytes(), 150u);
}

TEST(Dram, BandwidthFloorMatchesPeak) {
  const SystemConfig cfg = SystemConfig::transmuter(4, 8);
  Dram d(cfg);
  Stats s;
  d.traffic(12800, false, s);  // 12800 B / (16 ch * 8 B/cyc) = 100 cycles
  EXPECT_DOUBLE_EQ(d.bandwidth_floor_cycles(), 100.0);
}

TEST(Dram, ResetClearsCounters) {
  const SystemConfig cfg = SystemConfig::transmuter(4, 8);
  Dram d(cfg);
  Stats s;
  d.traffic(1000, false, s);
  d.reset();
  EXPECT_EQ(d.total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(d.bandwidth_floor_cycles(), 0.0);
}

TEST(Dram, MonotoneLatencyInUtilization) {
  // Property: with `now` fixed, latency is non-decreasing in total bytes.
  const SystemConfig cfg = SystemConfig::transmuter(4, 8);
  Dram d(cfg);
  Stats s;
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double lat = d.access(4096, false, /*now=*/50000.0, s);
    EXPECT_GE(lat + 1e-12, prev);
    prev = lat;
  }
}

}  // namespace
}  // namespace cosparse::sim
