#include "sim/cache.h"

#include <gtest/gtest.h>

namespace cosparse::sim {
namespace {

// Single 4 kB bank, 64 B lines, 4-way: 16 sets.
CacheArray small_cache(std::uint32_t prefetch_depth = 0) {
  return CacheArray(/*banks=*/1, /*bank_bytes=*/4096, /*line=*/64,
                    /*assoc=*/4, prefetch_depth, /*requesters=*/2);
}

TEST(Cache, ColdMissThenHit) {
  auto c = small_cache();
  auto o1 = c.access(0, 0x100, false);
  EXPECT_FALSE(o1.hit);
  EXPECT_EQ(o1.num_fetched, 1u);
  auto o2 = c.access(0, 0x100, false);
  EXPECT_TRUE(o2.hit);
  EXPECT_EQ(o2.num_fetched, 0u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  auto c = small_cache();
  c.access(0, 0x40, false);
  EXPECT_TRUE(c.access(0, 0x7F, false).hit);
}

TEST(Cache, LruEvictionOrder) {
  auto c = small_cache();
  // 4-way set: 5 conflicting lines (same set: stride = sets*line = 1024).
  const Addr stride = 1024;
  for (Addr i = 0; i < 4; ++i) c.access(0, i * stride, false);
  // Touch line 0 to make line 1 the LRU victim.
  c.access(0, 0, false);
  c.access(0, 4 * stride, false);  // evicts line 1
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(1 * stride));
  EXPECT_TRUE(c.probe(2 * stride));
  EXPECT_TRUE(c.probe(4 * stride));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  auto c = small_cache();
  const Addr stride = 1024;
  c.access(0, 0, /*write=*/true);
  for (Addr i = 1; i <= 4; ++i) {
    auto o = c.access(0, i * stride, false);
    if (!c.probe(0)) {
      // The write-dirty line 0 was the victim at some point.
      EXPECT_GE(o.num_writebacks, 1u);
      EXPECT_EQ(o.writeback_lines[0], 0u);
      return;
    }
  }
  FAIL() << "dirty line was never evicted";
}

TEST(Cache, CleanEvictionNoWriteback) {
  auto c = small_cache();
  const Addr stride = 1024;
  for (Addr i = 0; i <= 4; ++i) {
    auto o = c.access(0, i * stride, false);
    EXPECT_EQ(o.num_writebacks, 0u);
  }
}

TEST(Cache, StridePrefetcherFetchesAhead) {
  auto c = small_cache(/*prefetch_depth=*/4);
  // Sequential line stream: 0x0, 0x40, 0x80 — third access confirms
  // stride and the miss brings lookahead lines with it.
  c.access(0, 0x00, false);
  c.access(0, 0x40, false);
  auto o = c.access(0, 0x80, false);
  EXPECT_FALSE(o.hit);
  EXPECT_GE(o.num_prefetched, 1u);
  // The next sequential lines are now resident.
  EXPECT_TRUE(c.probe(0xC0));
  EXPECT_TRUE(c.access(0, 0xC0, false).hit);
}

TEST(Cache, SteadyStateStreamMostlyHits) {
  auto c = small_cache(/*prefetch_depth=*/4);
  int misses = 0;
  for (Addr a = 0; a < 64 * 200; a += 64) {
    if (!c.access(0, a, false).hit) ++misses;
  }
  // After warmup, the tagged prefetcher should make a sequential stream
  // nearly all-hit.
  EXPECT_LT(misses, 15);
}

TEST(Cache, PrefetcherPerRequesterIsolation) {
  auto c = small_cache(/*prefetch_depth=*/4);
  // Requester 0 streams; requester 1 does random accesses that would break
  // a shared stride detector.
  c.access(0, 0x00, false);
  c.access(1, 0x5000, false);
  c.access(0, 0x40, false);
  c.access(1, 0x9040, false);
  auto o = c.access(0, 0x80, false);
  EXPECT_GE(o.num_prefetched, 1u);  // stream still detected
}

TEST(Cache, FlushCountsDirtyAndClears) {
  auto c = small_cache();
  c.access(0, 0x000, true);
  c.access(0, 0x400, true);
  c.access(0, 0x800, false);
  EXPECT_EQ(c.flush(), 2u);
  EXPECT_FALSE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x800));
  EXPECT_EQ(c.flush(), 0u);
}

TEST(Cache, BankInterleaving) {
  // 4 banks: consecutive lines land in different banks, so 4 consecutive
  // lines never conflict in a set even with assoc 1.
  CacheArray c(/*banks=*/4, /*bank_bytes=*/256, /*line=*/64, /*assoc=*/1,
               /*prefetch=*/0, /*requesters=*/1);
  for (Addr a = 0; a < 4 * 64; a += 64) c.access(0, a, false);
  for (Addr a = 0; a < 4 * 64; a += 64) {
    EXPECT_TRUE(c.probe(a)) << "line " << a;
  }
}

TEST(Cache, InstallMakesLineResident) {
  auto c = small_cache();
  Addr wb = 0;
  EXPECT_EQ(c.install(0x123, &wb), 0u);
  EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, NegativeStrideStreamPrefetches) {
  auto c = small_cache(/*prefetch_depth=*/2);
  c.access(0, 64 * 100, false);
  c.access(0, 64 * 99, false);
  auto o = c.access(0, 64 * 98, false);
  EXPECT_GE(o.num_prefetched, 1u);
  EXPECT_TRUE(c.probe(64 * 97));
}

}  // namespace
}  // namespace cosparse::sim
