// Seeded property harness for the native backend: ~200 generated
// matrices spanning the generator family (uniform, power-law, R-MAT,
// banded, slice-killed) checked against the scalar reference under
// arithmetic and tropical semirings, with a sample of seeds additionally
// checked for *bitwise* equality against the cycle-accurate simulator —
// the stronger oracle that the native kernels run the same loops in the
// same order (DESIGN.md §14).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "../kernels/reference.h"
#include "common/digest.h"
#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "native/spmv.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

using kernels::DenseFrontier;
using kernels::PlainSpmv;
using kernels::SsspSemiring;
using kernels::testing::reference_spmv;

constexpr int kSeeds = 200;

/// Same generator family as the simulator property harness
/// (tests/harness/test_properties.cpp) so both backends face identical
/// shapes: every fifth seed visits the same generator.
sparse::Coo matrix_for_seed(std::uint64_t seed) {
  const Index n = 32 + static_cast<Index>(seed * 7 % 225);  // 32..256
  const auto nnz = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(n) * n / 4, 64 + seed * 31 % 1985);
  switch (seed % 5) {
    case 0:
      return sparse::uniform_random(n, n, nnz, seed,
                                    sparse::ValueDist::kUniformInt);
    case 1:
      return sparse::power_law(n, n, nnz, 2.2, seed,
                               sparse::ValueDist::kUniform01);
    case 2: {
      const std::uint32_t scale = 5 + static_cast<std::uint32_t>(seed % 3);
      const std::uint64_t cells = std::uint64_t{1} << (2 * scale);
      return sparse::rmat(scale, std::min(nnz, cells / 4), 0.55, 0.2, 0.2,
                          seed, sparse::ValueDist::kUniform01);
    }
    case 3: {
      const Index bw = 1 + static_cast<Index>(seed % 7);
      const std::uint64_t cap = static_cast<std::uint64_t>(n) * (2 * bw + 1) -
                                static_cast<std::uint64_t>(bw) * (bw + 1);
      return sparse::banded(n, n, bw, std::min<std::uint64_t>(nnz, cap / 2),
                            seed, sparse::ValueDist::kUniformInt);
    }
    default:
      return sparse::with_empty_slices(
          sparse::uniform_random(n, n, nnz, seed,
                                 sparse::ValueDist::kUniform01),
          0.3, 0.3, seed);
  }
}

double density_for_seed(std::uint64_t seed) {
  if (seed % 16 == 9) return 0.0;  // empty frontier
  return std::pow(10.0, -2.5 * ((seed * 13) % 100) / 100.0);  // ~3e-3..1
}

const sim::SystemConfig kSys = sim::SystemConfig::transmuter(2, 2);

std::string digest_ip(const kernels::IpResult& r) {
  Digest d;
  d.update_u64(r.num_touched);
  for (Index i = 0; i < r.y.dimension(); ++i) {
    d.update_u64(r.touched[i]);
    d.update_value(r.y[i]);
  }
  return d.hex();
}

std::string digest_op(const kernels::OpResult& r) {
  Digest d;
  d.update_u64(r.y.nnz());
  for (const auto& e : r.y.entries()) {
    d.update_index(e.index);
    d.update_value(e.value);
  }
  return d.hex();
}

template <class S>
void check_native_pull(const sparse::Coo& m, const sparse::SparseVector& x,
                       const S& sr, sim::ParallelExecutor* exec,
                       const std::string& what) {
  const auto part =
      kernels::IpPartitionedMatrix::build(m, kSys.num_pes(), 0, true);
  const auto x_dense = DenseFrontier::from_sparse(x, sr.vector_identity());
  const auto got =
      native::pull_spmv(kSys, sim::HwConfig::kSC, exec, part, x_dense, sr);
  const auto want = reference_spmv(m, x_dense, sr);
  ASSERT_EQ(got.touched, want.touched) << what;
  for (Index r = 0; r < m.rows(); ++r) {
    if (!want.touched[r]) continue;
    ASSERT_NEAR(got.y[r], want.y[r], 1e-9) << what << " row " << r;
  }
}

template <class S>
void check_native_push(const sparse::Coo& m, const sparse::SparseVector& x,
                       const S& sr, sim::ParallelExecutor* exec,
                       const std::string& what) {
  const auto striped = kernels::OpStripedMatrix::build(m, kSys.num_tiles, true);
  const auto got = native::push_spmsv(kSys, sim::HwConfig::kPC, exec, striped,
                                      x, nullptr, sr);
  const auto x_dense = DenseFrontier::from_sparse(x, sr.vector_identity());
  const auto want = reference_spmv(m, x_dense, sr);
  std::size_t want_touched = 0;
  for (const auto t : want.touched) want_touched += t;
  ASSERT_EQ(got.y.nnz(), want_touched) << what;
  for (const auto& e : got.y.entries()) {
    ASSERT_TRUE(want.touched[e.index]) << what << " row " << e.index;
    ASSERT_NEAR(e.value, want.y[e.index], 1e-9) << what << " row " << e.index;
  }
}

TEST(NativePropertyHarness, NativeMatchesScalarReferenceAcross200Seeds) {
  sim::ParallelExecutor exec(2);
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const sparse::Coo m = matrix_for_seed(seed);
    const auto x = sparse::random_sparse_vector(
        m.cols(), density_for_seed(seed), seed ^ 0xfeedULL);
    const std::string what = "seed " + std::to_string(seed);
    check_native_pull(m, x, PlainSpmv{}, nullptr, what + " pull/plain");
    check_native_push(m, x, PlainSpmv{}, nullptr, what + " push/plain");
    check_native_pull(m, x, SsspSemiring{}, nullptr, what + " pull/sssp");
    check_native_push(m, x, SsspSemiring{}, nullptr, what + " push/sssp");
    // A sample of seeds re-runs under the parallel executor.
    if (seed % 8 == 3) {
      check_native_pull(m, x, PlainSpmv{}, &exec, what + " pull/plain/mt");
      check_native_push(m, x, PlainSpmv{}, &exec, what + " push/plain/mt");
    }
  }
}

TEST(NativePropertyHarness, NativeBitIdenticalToSimOnSampledSeeds) {
  // Every 10th seed: run the *simulator* kernels on the same inputs and
  // require bitwise-equal outputs — not just reference-close. This is the
  // property the engine-level CI gate relies on.
  sim::ParallelExecutor exec(8);
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 10) {
    const sparse::Coo m = matrix_for_seed(seed);
    const auto x = sparse::random_sparse_vector(
        m.cols(), density_for_seed(seed), seed ^ 0xfeedULL);
    const std::string what = "seed " + std::to_string(seed);

    const auto part =
        kernels::IpPartitionedMatrix::build(m, kSys.num_pes(), 0, true);
    const auto x_dense =
        DenseFrontier::from_sparse(x, PlainSpmv{}.vector_identity());
    sim::Machine machine(kSys, sim::HwConfig::kSC);
    kernels::AddressMap amap(machine);
    const std::string sim_pull = digest_ip(
        kernels::run_inner_product(machine, amap, part, x_dense, PlainSpmv{}));
    EXPECT_EQ(sim_pull, digest_ip(native::pull_spmv(kSys, sim::HwConfig::kSC,
                                                    nullptr, part, x_dense,
                                                    PlainSpmv{})))
        << what << " pull serial";
    EXPECT_EQ(sim_pull, digest_ip(native::pull_spmv(kSys, sim::HwConfig::kSC,
                                                    &exec, part, x_dense,
                                                    PlainSpmv{})))
        << what << " pull mt";

    const auto striped =
        kernels::OpStripedMatrix::build(m, kSys.num_tiles, true);
    sim::Machine machine_op(kSys, sim::HwConfig::kPC);
    kernels::AddressMap amap_op(machine_op);
    const std::string sim_push = digest_op(kernels::run_outer_product(
        machine_op, amap_op, striped, x, nullptr, PlainSpmv{}));
    EXPECT_EQ(sim_push,
              digest_op(native::push_spmsv(kSys, sim::HwConfig::kPC, nullptr,
                                           striped, x, nullptr, PlainSpmv{})))
        << what << " push serial";
    EXPECT_EQ(sim_push,
              digest_op(native::push_spmsv(kSys, sim::HwConfig::kPC, &exec,
                                           striped, x, nullptr, PlainSpmv{})))
        << what << " push mt";
  }
}

}  // namespace
}  // namespace cosparse
