// Telemetry bit-neutrality harness.
//
// Telemetry reads wall clocks and simulator state but never writes back
// into the simulation, so the simulated-results subset of a run report —
// everything except the wall-clock-bearing "telemetry" section — must be
// byte-identical between a telemetry-on and a telemetry-off run of the
// same workload, for serial and tile-parallel engines alike. This is the
// same `obs::results_subset` document `cosparse-prof extract` emits and
// the CI byte-compare diffs; these tests enforce the guarantee in-process.
#include <gtest/gtest.h>

#include <string>

#include "kernels/semiring.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sim/machine.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

using kernels::PlainSpmv;
using runtime::Engine;
using runtime::EngineOptions;

constexpr Index kDim = 500;
constexpr std::uint64_t kNnz = 6000;

sparse::Coo test_matrix() {
  return sparse::uniform_random(kDim, kDim, kNnz, 17,
                                sparse::ValueDist::kUniform01);
}

/// Auto-deciding engine run across a density ramp (kernel switches,
/// frontier conversions, hw reconfigurations) with an optional telemetry
/// registry attached. Returns the full run-report document.
Json run_report(obs::Telemetry* telemetry, std::uint32_t threads) {
  EngineOptions opts;
  opts.sim_threads = threads;
  opts.telemetry = telemetry;
  Engine eng(test_matrix(), sim::SystemConfig::transmuter(4, 4), opts);
  int iter = 0;
  for (const double density : {0.002, 0.03, 0.4, 0.9, 0.01}) {
    const auto x = sparse::random_sparse_vector(kDim, density, 41 + iter++);
    eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
  }
  return runtime::make_run_report(eng, "telemetry_differential").root();
}

TEST(TelemetryDifferential, ResultsSubsetIsByteIdenticalWithTelemetryOn) {
  obs::Telemetry telemetry(obs::TelemetryConfig::parse("1i"));
  const Json on = run_report(&telemetry, 0);
  const Json off = run_report(nullptr, 0);

  // The instrumented run really did take snapshots and grow a telemetry
  // section — otherwise this test would compare two identical code paths.
  EXPECT_GT(telemetry.snapshots_taken(), 0u);
  EXPECT_NE(on.find("telemetry"), nullptr);
  EXPECT_EQ(off.find("telemetry"), nullptr);

  EXPECT_EQ(obs::results_subset(on).dump(1), obs::results_subset(off).dump(1));
}

TEST(TelemetryDifferential, ParallelEngineStaysBitNeutral) {
  // The tile-parallel path adds per-tile fill/replay timing around the
  // workers; the serial telemetry-off report is still the oracle.
  const Json off_serial = run_report(nullptr, 0);
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    obs::Telemetry telemetry(obs::TelemetryConfig::parse("1i"));
    const Json on = run_report(&telemetry, threads);
    EXPECT_EQ(obs::results_subset(on).dump(1),
              obs::results_subset(off_serial).dump(1))
        << threads << " thread(s)";
    // The machine-level instrumentation fired: per-tile fill and replay
    // wall times were recorded for the parallel legs.
    if (threads > 0) {
      EXPECT_NE(telemetry.find_histogram("sim.tile_fill_ms"), nullptr)
          << threads << " thread(s)";
      EXPECT_NE(telemetry.find_histogram("sim.replay_ms"), nullptr)
          << threads << " thread(s)";
    }
  }
}

TEST(TelemetryDifferential, WallClockCadenceIsAlsoBitNeutral) {
  // Wall-clock cadence snapshots can fire at arbitrary points relative to
  // the simulation; the simulated results must not care.
  obs::Telemetry telemetry(obs::TelemetryConfig::parse("1ms"));
  const Json on = run_report(&telemetry, 2);
  const Json off = run_report(nullptr, 0);
  EXPECT_EQ(obs::results_subset(on).dump(1), obs::results_subset(off).dump(1));
}

}  // namespace
}  // namespace cosparse
