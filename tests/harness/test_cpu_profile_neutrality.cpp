// CPU-profiler bit-neutrality harness.
//
// The sampling profiler reads program counters and phase tags from a
// SIGPROF handler but never writes into the simulation, so the
// simulated-results subset of a run report — everything except the
// wall-clock-bearing "telemetry" and "cpu_profile" sections — must be
// byte-identical between a profiled and an unprofiled run of the same
// workload, for serial and tile-parallel engines alike. Same guarantee
// the CI byte-compare (cosparse-prof extract + cmp) enforces end-to-end.
//
// (Named CpuProfileNeutrality, not *Differential*: the TSan CI lane's
// test filter must not pick up a suite that arms a process-wide signal
// timer under instrumentation it doesn't model.)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "kernels/semiring.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sim/machine.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

using kernels::PlainSpmv;
using runtime::Engine;
using runtime::EngineOptions;

constexpr Index kDim = 500;
constexpr std::uint64_t kNnz = 6000;

sparse::Coo test_matrix() {
  return sparse::uniform_random(kDim, kDim, kNnz, 17,
                                sparse::ValueDist::kUniform01);
}

/// Auto-deciding engine run across a density ramp (kernel switches,
/// frontier conversions, hw reconfigurations). The run is identical to
/// the telemetry harness's; the profiler, when on, samples it from the
/// outside via SIGPROF.
Json run_report(std::uint32_t threads) {
  EngineOptions opts;
  opts.sim_threads = threads;
  Engine eng(test_matrix(), sim::SystemConfig::transmuter(4, 4), opts);
  int iter = 0;
  for (const double density : {0.002, 0.03, 0.4, 0.9, 0.01}) {
    const auto x = sparse::random_sparse_vector(kDim, density, 41 + iter++);
    eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
  }
  return runtime::make_run_report(eng, "cpu_profile_neutrality").root();
}

TEST(CpuProfileNeutrality, ResultsSubsetIsByteIdenticalWithProfilingOn) {
  if (!obs::SampleProfiler::platform_supported()) {
    GTEST_SKIP() << "no ITIMER_PROF on this platform";
  }
  const Json off = run_report(0);

  obs::SampleProfiler profiler;
  ASSERT_TRUE(profiler.start());
  Json on = run_report(0);
  // Keep the timer window open long enough to guarantee deliveries even
  // on hosts where ITIMER_PROF fires at jiffy resolution (~100 Hz) — the
  // engine run alone is only a few milliseconds of CPU.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
  volatile std::uint64_t sink = 1;
  while (std::chrono::steady_clock::now() < until) {
    sink = sink * 6364136223846793005ull + 1u;
  }
  profiler.stop();

  // The instrumented run really was interrupted by the sampler —
  // otherwise this would compare two identical code paths. (A report's
  // cpu_profile section is attached by the CLI session layer, not
  // make_run_report, so both documents lack one here; what matters is
  // that the SIGPROF deliveries left the simulation untouched.)
  EXPECT_GT(profiler.num_samples(), 0u);
  EXPECT_EQ(obs::results_subset(on).dump(1),
            obs::results_subset(off).dump(1));
}

TEST(CpuProfileNeutrality, ParallelEngineStaysBitNeutralUnderSampling) {
  if (!obs::SampleProfiler::platform_supported()) {
    GTEST_SKIP() << "no ITIMER_PROF on this platform";
  }
  const Json off_serial = run_report(0);
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    obs::SampleProfiler profiler;
    ASSERT_TRUE(profiler.start());
    const Json on = run_report(threads);
    profiler.stop();
    EXPECT_EQ(obs::results_subset(on).dump(1),
              obs::results_subset(off_serial).dump(1))
        << threads << " thread(s)";
  }
}

TEST(CpuProfileNeutrality, ResultsSubsetStripsACpuProfileSection) {
  // The extract path: a report carrying a cpu_profile section reduces to
  // the same subset as one without, so `cosparse-prof extract` + cmp can
  // gate profiled CI runs against unprofiled baselines.
  Json with = run_report(0);
  Json section = Json::object();
  section["schema"] = std::string(obs::kCpuProfileSchema);
  section["samples"] = 123;
  with["cpu_profile"] = std::move(section);
  const Json without = run_report(0);
  EXPECT_NE(with.find("cpu_profile"), nullptr);
  EXPECT_EQ(obs::results_subset(with).dump(1),
            obs::results_subset(without).dump(1));
}

}  // namespace
}  // namespace cosparse
