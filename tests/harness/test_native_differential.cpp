// Differential harness for the native execution backend (DESIGN.md §14).
//
// The guarantee under test: an engine with exec_mode = native produces
// *byte-identical results* to the serial cycle-accurate simulator — same
// output values bit-for-bit, same touched sets, same per-iteration
// decisions, same audit trail — across every sw/hw configuration pair,
// both semirings, several dataset shapes, and native thread counts
// {1, 8}. The oracles are (a) a Digest over every output bit and (b) the
// functional subset of the run report (obs::functional_subset), which is
// exactly what the CI native quickstart gate byte-compares.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/digest.h"
#include "kernels/frontier.h"
#include "kernels/semiring.h"
#include "native/exec_mode.h"
#include "obs/report.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

using kernels::PlainSpmv;
using kernels::SsspSemiring;
using runtime::Engine;
using runtime::EngineOptions;
using runtime::SwConfig;

constexpr Index kDim = 600;
constexpr std::uint64_t kNnz = 7200;

enum class Dataset { kUniform, kPowerLaw, kRmat };

const char* to_string(Dataset d) {
  switch (d) {
    case Dataset::kUniform: return "Uniform";
    case Dataset::kPowerLaw: return "PowerLaw";
    default: return "Rmat";
  }
}

sparse::Coo matrix_for(Dataset d) {
  switch (d) {
    case Dataset::kUniform:
      return sparse::uniform_random(kDim, kDim, kNnz, 11,
                                    sparse::ValueDist::kUniform01);
    case Dataset::kPowerLaw:
      return sparse::power_law(kDim, kDim, kNnz, 2.1, 12,
                               sparse::ValueDist::kUniform01);
    default:
      // R-MAT: 2^9 = 512 vertices, heavy hubs and dense columns.
      return sparse::rmat(9, kNnz / 2, 0.55, 0.2, 0.2, 13,
                          sparse::ValueDist::kUniform01);
  }
}

struct RunResult {
  std::string output_digest;  ///< every output bit of every iteration
  std::string functional;     ///< functional_subset of the run report
};

/// Pinned-configuration run: three frontiers spanning the density range.
/// The digest folds in each Output's touched rows and values in row
/// order, which is representation-independent across IP/OP.
template <kernels::Semiring S>
RunResult pinned_run(SwConfig sw, sim::HwConfig hw, native::ExecMode mode,
                     std::uint32_t threads, Dataset dataset, const S& sr) {
  EngineOptions opts;
  opts.sw_reconfig = false;
  opts.hw_reconfig = false;
  opts.fixed_sw = sw;
  opts.fixed_hw = hw;
  opts.sim_threads = threads;
  opts.exec_mode = mode;
  Engine eng(matrix_for(dataset), sim::SystemConfig::transmuter(4, 4), opts);
  Digest d;
  int iter = 0;
  const Index n = eng.dimension();
  for (const double density : {0.004, 0.05, 0.6}) {
    const auto x = sparse::random_sparse_vector(n, density, 23 + iter++);
    const auto out = eng.spmv(Engine::Frontier::from_sparse(x), sr);
    d.update_u64(out.num_touched());
    out.for_each_touched(
        [&d](Index r, Value v) { d.update_index(r); d.update_value(v); });
  }
  RunResult res;
  res.output_digest = d.hex();
  res.functional =
      obs::functional_subset(
          runtime::make_run_report(eng, "native_differential").root())
          .dump(1);
  return res;
}

using ConfigPair = std::pair<SwConfig, sim::HwConfig>;
using Params = std::tuple<ConfigPair, Dataset, std::uint32_t>;

class NativeDifferential : public ::testing::TestWithParam<Params> {};

TEST_P(NativeDifferential, NativeByteIdenticalToSerialSim) {
  const auto [cfg, dataset, threads] = GetParam();
  const RunResult sim = pinned_run(cfg.first, cfg.second,
                                   native::ExecMode::kSim, 0, dataset,
                                   PlainSpmv{});
  const RunResult nat = pinned_run(cfg.first, cfg.second,
                                   native::ExecMode::kNative, threads,
                                   dataset, PlainSpmv{});
  EXPECT_EQ(sim.output_digest, nat.output_digest)
      << "native output values diverged from the serial simulator";
  EXPECT_EQ(sim.functional, nat.functional)
      << "functional report subset diverged (decisions or iterations)";
}

TEST_P(NativeDifferential, TropicalSemiringByteIdenticalToSerialSim) {
  const auto [cfg, dataset, threads] = GetParam();
  const RunResult sim = pinned_run(cfg.first, cfg.second,
                                   native::ExecMode::kSim, 0, dataset,
                                   SsspSemiring{});
  const RunResult nat = pinned_run(cfg.first, cfg.second,
                                   native::ExecMode::kNative, threads,
                                   dataset, SsspSemiring{});
  EXPECT_EQ(sim.output_digest, nat.output_digest);
  EXPECT_EQ(sim.functional, nat.functional);
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const ConfigPair cfg = std::get<0>(info.param);
  std::string name = cfg.first == SwConfig::kIP ? "IP" : "OP";
  name += sim::to_string(cfg.second);
  name += to_string(std::get<1>(info.param));
  name += "x" + std::to_string(std::get<2>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, NativeDifferential,
    ::testing::Combine(
        ::testing::Values(ConfigPair{SwConfig::kIP, sim::HwConfig::kSC},
                          ConfigPair{SwConfig::kIP, sim::HwConfig::kSCS},
                          ConfigPair{SwConfig::kOP, sim::HwConfig::kPC},
                          ConfigPair{SwConfig::kOP, sim::HwConfig::kPS}),
        ::testing::Values(Dataset::kUniform, Dataset::kPowerLaw,
                          Dataset::kRmat),
        ::testing::Values(1u, 8u)),
    param_name);

/// Auto-deciding run across a density ramp that crosses the IP/OP
/// boundary: kernel switches, frontier conversions and hardware
/// reconfigurations must all happen at the same iterations with the same
/// results in both modes.
RunResult auto_run(native::ExecMode mode, std::uint32_t threads) {
  EngineOptions opts;
  opts.sim_threads = threads;
  opts.exec_mode = mode;
  Engine eng(matrix_for(Dataset::kPowerLaw),
             sim::SystemConfig::transmuter(4, 4), opts);
  Digest d;
  int iter = 0;
  for (const double density : {0.0008, 0.003, 0.03, 0.3, 0.9, 0.02, 0.001}) {
    const auto x = sparse::random_sparse_vector(kDim, density, 31 + iter++);
    const auto out = eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
    d.update_u64(out.num_touched());
    out.for_each_touched(
        [&d](Index r, Value v) { d.update_index(r); d.update_value(v); });
  }
  RunResult res;
  res.output_digest = d.hex();
  res.functional = obs::functional_subset(
                       runtime::make_run_report(eng, "native_differential")
                           .root())
                       .dump(1);
  return res;
}

TEST(NativeDifferentialAuto, ReconfiguringSequenceByteIdenticalToSerialSim) {
  const RunResult sim = auto_run(native::ExecMode::kSim, 0);
  for (const std::uint32_t threads : {1u, 8u}) {
    const RunResult nat = auto_run(native::ExecMode::kNative, threads);
    EXPECT_EQ(sim.output_digest, nat.output_digest)
        << threads << " native thread(s)";
    EXPECT_EQ(sim.functional, nat.functional)
        << threads << " native thread(s)";
  }
}

TEST(NativeDifferentialAuto, NativeDecisionCountersMatchAudit) {
  EngineOptions opts;
  opts.exec_mode = native::ExecMode::kNative;
  opts.sim_threads = 0;
  Engine eng(matrix_for(Dataset::kUniform),
             sim::SystemConfig::transmuter(4, 4), opts);
  int iter = 0;
  std::size_t pull_expected = 0;
  std::size_t push_expected = 0;
  for (const double density : {0.001, 0.4, 0.002, 0.7}) {
    const auto x = sparse::random_sparse_vector(kDim, density, 61 + iter++);
    eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
    (eng.iterations().back().sw == SwConfig::kIP ? pull_expected
                                                 : push_expected)++;
  }
  EXPECT_EQ(eng.native_decisions().pulls(), pull_expected);
  EXPECT_EQ(eng.native_decisions().pushes(), push_expected);
  // Every iteration record in native mode carries zero cycles/energy.
  for (const auto& rec : eng.iterations()) {
    EXPECT_EQ(rec.cycles, 0u);
    EXPECT_EQ(rec.convert_cycles, 0u);
    EXPECT_EQ(rec.energy_pj, 0.0);
  }
  // And the report gains the native section instead of cycle totals.
  const Json rep =
      runtime::make_run_report(eng, "native_differential").root();
  ASSERT_NE(rep.find("native"), nullptr);
  EXPECT_EQ(rep.find("totals"), nullptr);
  EXPECT_EQ(rep.find("stats"), nullptr);
  const Json* mode = rep.find("config")->find("engine")->find("exec_mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_EQ(mode->as_string(), "native");
}

}  // namespace
}  // namespace cosparse
