// Soak test for the tile-parallel simulation engine (ctest -L soak; built
// only under -DCOSPARSE_SOAK=ON and excluded from the default suite).
//
// A 64-tile machine runs ten thousand PageRank-style SpMV iterations under
// the parallel executor. The point is longevity, not correctness of a
// single step (the differential and property harnesses cover that): the
// clock must advance monotonically on every iteration, Stats counters must
// never run backwards or wrap, and the executor must survive ~640k tile
// phases without deadlock or drift.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "kernels/frontier.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sim/machine.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

TEST(SoakParallelSim, TenThousandIterationsOn64Tiles) {
  constexpr Index kVertices = 2000;
  constexpr std::uint64_t kEdges = 10000;
  constexpr int kIterations = 10000;

  const auto m = sparse::power_law(kVertices, kVertices, kEdges, 2.3, 97,
                                   sparse::ValueDist::kUniform01);
  runtime::EngineOptions opts;
  opts.sim_threads = 4;
  runtime::Engine eng(m, sim::SystemConfig::transmuter(64, 2), opts);

  // PageRank iterates on a dense rank vector: every vertex stays active.
  auto frontier = runtime::Engine::Frontier::from_dense(
      kernels::DenseFrontier::from_sparse(
          sparse::random_sparse_vector(kVertices, 1.0, 5), 0.0));

  const kernels::PageRankSemiring sr;
  Cycles prev_cycles = eng.total_cycles();
  sim::Stats prev_stats = eng.machine().stats();
  for (int it = 0; it < kIterations; ++it) {
    const auto out = eng.spmv(frontier, sr);
    ASSERT_TRUE(out.dense) << "dense frontier must select IP";

    const Cycles now = eng.total_cycles();
    ASSERT_GT(now, prev_cycles) << "clock stalled at iteration " << it;
    prev_cycles = now;

    // Counters are cumulative: a decrease means a counter ran backwards or
    // wrapped. Spot-check the high-traffic ones every iteration.
    const sim::Stats s = eng.machine().stats();
    ASSERT_GE(s.l1_hits, prev_stats.l1_hits) << "iteration " << it;
    ASSERT_GE(s.l2_hits, prev_stats.l2_hits) << "iteration " << it;
    ASSERT_GE(s.dram_read_bytes, prev_stats.dram_read_bytes)
        << "iteration " << it;
    ASSERT_GE(s.xbar_transfers, prev_stats.xbar_transfers)
        << "iteration " << it;
    ASSERT_GE(s.pe_compute_cycles, prev_stats.pe_compute_cycles)
        << "iteration " << it;
    prev_stats = s;

    // Feed the produced ranks back in, as the PageRank driver would (the
    // touched bitmap stays full under a dense frontier, so every vertex
    // remains active and the decision engine keeps choosing IP).
    if (it % 100 == 99) {
      kernels::DenseFrontier next(kVertices, 0.0);
      for (Index r = 0; r < kVertices; ++r) next.set(r, out.ip.y[r]);
      frontier = runtime::Engine::Frontier::from_dense(std::move(next));
    }
  }

  EXPECT_EQ(eng.iterations().size(), static_cast<std::size_t>(kIterations));
  EXPECT_TRUE(std::isfinite(eng.total_energy_pj()));
  // Far below the uint64 horizon: wrap-around would show up as a huge or
  // tiny total, not a plausible one.
  EXPECT_LT(eng.total_cycles(), std::uint64_t{1} << 62);
}

}  // namespace
}  // namespace cosparse
