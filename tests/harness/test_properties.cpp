// Seeded property harness: ~200 generated matrices spanning the generator
// family (uniform, power-law, R-MAT, banded, slice-killed) and the
// degenerate shapes real frontiers produce (empty frontier, empty rows and
// columns, dense columns, single-element matrices). For every seed both
// kernels must agree with the scalar reference under an arithmetic
// (PlainSpmv) and a tropical (SsspSemiring) semiring, and a sample of
// seeds re-runs under a 2-thread executor, which must not change results.
//
// The lint bridge property at the bottom ties the static verifier to the
// simulator: every generated plan that lints clean must also simulate
// correctly under its pinned configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "../kernels/reference.h"
#include "common/rng.h"
#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "sparse/generate.h"
#include "verify/plan.h"
#include "verify/verify.h"

namespace cosparse {
namespace {

using kernels::DenseFrontier;
using kernels::PlainSpmv;
using kernels::SsspSemiring;
using kernels::testing::reference_spmv;

constexpr int kSeeds = 200;

/// Generator family keyed by seed: every fifth seed visits the same
/// generator, so 200 seeds cover each ~40 times.
sparse::Coo matrix_for_seed(std::uint64_t seed) {
  const Index n = 32 + static_cast<Index>(seed * 7 % 225);  // 32..256
  const auto nnz = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(n) * n / 4, 64 + seed * 31 % 1985);
  switch (seed % 5) {
    case 0:
      return sparse::uniform_random(n, n, nnz, seed,
                                    sparse::ValueDist::kUniformInt);
    case 1:
      return sparse::power_law(n, n, nnz, 2.2, seed,
                               sparse::ValueDist::kUniform01);
    case 2: {
      // R-MAT: highly skewed — produces dense columns and hub rows.
      const std::uint32_t scale = 5 + static_cast<std::uint32_t>(seed % 3);
      const std::uint64_t cells = std::uint64_t{1} << (2 * scale);
      return sparse::rmat(scale, std::min(nnz, cells / 4), 0.55, 0.2, 0.2,
                          seed, sparse::ValueDist::kUniform01);
    }
    case 3: {
      const Index bw = 1 + static_cast<Index>(seed % 7);
      const std::uint64_t cap = static_cast<std::uint64_t>(n) * (2 * bw + 1) -
                                static_cast<std::uint64_t>(bw) * (bw + 1);
      return sparse::banded(n, n, bw, std::min<std::uint64_t>(nnz, cap / 2),
                            seed, sparse::ValueDist::kUniformInt);
    }
    default:
      // Empty-row/empty-column pathologies: knock whole slices out of a
      // uniform matrix.
      return sparse::with_empty_slices(
          sparse::uniform_random(n, n, nnz, seed,
                                 sparse::ValueDist::kUniform01),
          0.3, 0.3, seed);
  }
}

/// Frontier density keyed by seed; every 16th seed is the empty frontier.
double density_for_seed(std::uint64_t seed) {
  if (seed % 16 == 9) return 0.0;
  return std::pow(10.0, -2.5 * ((seed * 13) % 100) / 100.0);  // ~3e-3..1
}

template <class S>
void check_ip(const sparse::Coo& m, const sparse::SparseVector& x,
              const S& sr, sim::ParallelExecutor* exec,
              const std::string& what) {
  const sim::SystemConfig cfg = sim::SystemConfig::transmuter(2, 2);
  sim::Machine machine(cfg, sim::HwConfig::kSC);
  machine.set_executor(exec);
  kernels::AddressMap amap(machine);
  const auto part =
      kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), 0, true);
  const auto x_dense = DenseFrontier::from_sparse(x, sr.vector_identity());
  const auto got = kernels::run_inner_product(machine, amap, part, x_dense, sr);
  const auto want = reference_spmv(m, x_dense, sr);
  ASSERT_EQ(got.touched, want.touched) << what;
  for (Index r = 0; r < m.rows(); ++r) {
    if (!want.touched[r]) continue;
    ASSERT_NEAR(got.y[r], want.y[r], 1e-9) << what << " row " << r;
  }
}

template <class S>
void check_op(const sparse::Coo& m, const sparse::SparseVector& x,
              const S& sr, sim::ParallelExecutor* exec,
              const std::string& what) {
  const sim::SystemConfig cfg = sim::SystemConfig::transmuter(2, 2);
  sim::Machine machine(cfg, sim::HwConfig::kPC);
  machine.set_executor(exec);
  kernels::AddressMap amap(machine);
  const auto striped = kernels::OpStripedMatrix::build(m, cfg.num_tiles, true);
  const auto got =
      kernels::run_outer_product(machine, amap, striped, x, nullptr, sr);
  const auto x_dense = DenseFrontier::from_sparse(x, sr.vector_identity());
  const auto want = reference_spmv(m, x_dense, sr);
  std::size_t want_touched = 0;
  for (const auto t : want.touched) want_touched += t;
  ASSERT_EQ(got.y.nnz(), want_touched) << what;
  Index prev_row = 0;
  bool first = true;
  for (const auto& e : got.y.entries()) {
    ASSERT_TRUE(want.touched[e.index]) << what << " row " << e.index;
    ASSERT_NEAR(e.value, want.y[e.index], 1e-9) << what << " row " << e.index;
    if (!first) ASSERT_LT(prev_row, e.index) << what << ": y not sorted";
    prev_row = e.index;
    first = false;
  }
}

TEST(PropertyHarness, KernelsMatchScalarReferenceAcross200Seeds) {
  sim::ParallelExecutor exec(2);
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const sparse::Coo m = matrix_for_seed(seed);
    const auto x = sparse::random_sparse_vector(
        m.cols(), density_for_seed(seed), seed ^ 0xfeedULL);
    const std::string what = "seed " + std::to_string(seed);
    // Arithmetic and tropical semirings, serial machines.
    check_ip(m, x, PlainSpmv{}, nullptr, what + " IP/plain");
    check_op(m, x, PlainSpmv{}, nullptr, what + " OP/plain");
    check_ip(m, x, SsspSemiring{}, nullptr, what + " IP/sssp");
    check_op(m, x, SsspSemiring{}, nullptr, what + " OP/sssp");
    // A sample of seeds re-runs under the parallel executor.
    if (seed % 8 == 3) {
      check_ip(m, x, PlainSpmv{}, &exec, what + " IP/plain/mt");
      check_op(m, x, PlainSpmv{}, &exec, what + " OP/plain/mt");
    }
  }
}

TEST(PropertyHarness, SingleEntryMatricesAndEmptyFrontiers) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const Index n = 8 + static_cast<Index>(seed % 50);
    const sparse::Coo m = sparse::single_entry(n, n, seed);
    ASSERT_EQ(m.nnz(), 1u);
    const std::string what = "single-entry seed " + std::to_string(seed);
    // Full frontier: exactly the one element lands.
    const auto full = sparse::random_sparse_vector(n, 1.0, seed);
    check_ip(m, full, PlainSpmv{}, nullptr, what);
    check_op(m, full, PlainSpmv{}, nullptr, what);
    // Empty frontier: nothing lands, kernels must not touch anything.
    const sparse::SparseVector empty(n);
    check_ip(m, empty, PlainSpmv{}, nullptr, what + " empty");
    check_op(m, empty, PlainSpmv{}, nullptr, what + " empty");
  }
}

TEST(PropertyHarness, GeneratorsHonorTheirStructuralContracts) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const Index n = 16 + static_cast<Index>(seed % 100);
    const Index bw = 1 + static_cast<Index>(seed % 5);
    const sparse::Coo b = sparse::banded(n, n, bw, n, seed);
    EXPECT_EQ(b.nnz(), static_cast<std::size_t>(n));
    for (const auto& t : b.triplets()) {
      const Index lo = t.row > bw ? t.row - bw : 0;
      EXPECT_GE(t.col, lo) << "seed " << seed;
      EXPECT_LE(t.col, std::min<Index>(n - 1, t.row + bw)) << "seed " << seed;
    }
    const sparse::Coo base = sparse::uniform_random(n, n, n * 2, seed);
    const sparse::Coo cut = sparse::with_empty_slices(base, 0.5, 0.0, seed);
    EXPECT_EQ(cut.rows(), base.rows());
    EXPECT_LE(cut.nnz(), base.nnz());
  }
}

TEST(PropertyHarness, IndependentStreamsPerGenerator) {
  // The keyed-RNG regression check: before the stream-keyed constructor,
  // every generator called with seed S replayed the exact same underlying
  // draw sequence, so e.g. a uniform matrix and a dense vector from the
  // same seed were perfectly correlated.
  Rng a(42, "uniform_random");
  Rng b(42, "random_dense_vector");
  Rng a_again(42, "uniform_random");
  bool streams_differ = false;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t da = a.next();
    ASSERT_EQ(da, a_again.next()) << "same (seed, name) must replay exactly";
    if (da != b.next()) streams_differ = true;
  }
  EXPECT_TRUE(streams_differ)
      << "differently named streams drew identical sequences";
  // Generator-level determinism: same seed, same generator, same output.
  const auto m1 = sparse::uniform_random(64, 64, 256, 42,
                                         sparse::ValueDist::kUniform01);
  const auto m2 = sparse::uniform_random(64, 64, 256, 42,
                                         sparse::ValueDist::kUniform01);
  ASSERT_EQ(m1.nnz(), m2.nnz());
  for (std::size_t i = 0; i < m1.nnz(); ++i) {
    EXPECT_EQ(m1.triplets()[i].row, m2.triplets()[i].row);
    EXPECT_EQ(m1.triplets()[i].col, m2.triplets()[i].col);
    EXPECT_EQ(m1.triplets()[i].value, m2.triplets()[i].value);
  }
}

TEST(PropertyHarness, LintCleanPlansSimulateCorrectly) {
  int simulated = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const Index n = 64 + static_cast<Index>(seed * 11 % 193);
    const std::uint64_t nnz = static_cast<std::uint64_t>(n) * 4;

    verify::RunPlan plan;
    plan.name = "property-" + std::to_string(seed);
    plan.system = sim::SystemConfig::transmuter(
        1u << (seed % 3), 2u << (seed % 2));  // 1/2/4 tiles x 2/4 PEs
    plan.dataset.dimension = n;
    plan.dataset.matrix_nnz = nnz;
    plan.dataset.frontier_nnz = static_cast<std::size_t>(n);
    const bool outer = seed % 2 == 1;
    plan.sw = outer ? runtime::SwConfig::kOP : runtime::SwConfig::kIP;
    plan.hw = outer ? sim::HwConfig::kPC : sim::HwConfig::kSC;

    const verify::LintReport lint = verify::lint_plan(plan);
    if (!lint.clean()) continue;  // a plan the verifier rejects is not run
    ++simulated;

    // Simulate exactly what the plan pins and check the result.
    runtime::EngineOptions opts;
    opts.sw_reconfig = false;
    opts.hw_reconfig = false;
    opts.fixed_sw = *plan.sw;
    opts.fixed_hw = plan.hw;
    opts.sim_threads = seed % 4 == 0 ? 2u : 0u;
    const auto m = sparse::uniform_random(n, n, nnz, seed,
                                          sparse::ValueDist::kUniform01);
    runtime::Engine eng(m, plan.system, opts);
    const auto x = sparse::random_sparse_vector(n, 0.25, seed + 1);
    const auto out =
        eng.spmv(runtime::Engine::Frontier::from_sparse(x), PlainSpmv{});
    // The engine computes f_next = SpMV(G^T, f) (it transposes the
    // adjacency at construction), so the oracle runs on the transpose.
    const auto want = reference_spmv(
        sparse::transpose(m), DenseFrontier::from_sparse(x, 0.0), PlainSpmv{});
    out.for_each_touched([&](Index r, Value val) {
      ASSERT_NEAR(val, want.y[r], 1e-9) << "seed " << seed << " row " << r;
    });
    ASSERT_EQ(out.dense, !outer) << "seed " << seed;
  }
  // The property is vacuous if the verifier rejects everything.
  EXPECT_GE(simulated, 8) << "lint rejected too many well-formed plans";
}

}  // namespace
}  // namespace cosparse
