// Differential harness for the tile-parallel simulation engine.
//
// The oracle is the full run report: make_run_report() serializes every
// observable of a run — cycle counts, global and per-tile Stats, derived
// rates, the region-attributed memory profile and the decision audit
// trail — so byte-equality of the serialized report between a serial
// (sim_threads = 0) engine and a parallel one is the strongest check we
// can make. Machine::for_tiles guarantees it for every thread count
// (DESIGN.md §11); these tests enforce the guarantee for every sw/hw
// configuration pair and a spread of thread counts, including under the
// full auto-reconfiguring decision flow.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>

#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "kernels/region_plan.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "sim/profile.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

using kernels::DenseFrontier;
using kernels::PlainSpmv;
using runtime::Engine;
using runtime::EngineOptions;
using runtime::SwConfig;

constexpr Index kDim = 600;
constexpr std::uint64_t kNnz = 7200;

sparse::Coo test_matrix() {
  return sparse::uniform_random(kDim, kDim, kNnz, 11,
                                sparse::ValueDist::kUniform01);
}

/// Pinned-configuration engine run -> serialized run report. `threads = 0`
/// forces serial simulation even when COSPARSE_SIM_THREADS is set, so the
/// reference leg of every comparison is genuinely the serial engine.
std::string pinned_report(SwConfig sw, sim::HwConfig hw,
                          std::uint32_t threads) {
  EngineOptions opts;
  opts.sw_reconfig = false;
  opts.hw_reconfig = false;
  opts.fixed_sw = sw;
  opts.fixed_hw = hw;
  opts.sim_threads = threads;
  Engine eng(test_matrix(), sim::SystemConfig::transmuter(4, 4), opts);
  sim::MemProfiler prof;
  eng.machine().set_profiler(&prof);
  int iter = 0;
  for (const double density : {0.004, 0.05, 0.6}) {
    const auto x = sparse::random_sparse_vector(kDim, density, 23 + iter++);
    eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
  }
  return runtime::make_run_report(eng, "differential").to_string();
}

/// Auto-deciding engine run (sw + hw reconfiguration enabled) across a
/// density ramp that crosses the IP/OP decision boundary, so the sequence
/// includes kernel switches, frontier conversions and hardware
/// reconfigurations (cache flushes).
std::string auto_report(std::uint32_t threads) {
  EngineOptions opts;
  opts.sim_threads = threads;
  Engine eng(test_matrix(), sim::SystemConfig::transmuter(4, 4), opts);
  sim::MemProfiler prof;
  eng.machine().set_profiler(&prof);
  int iter = 0;
  for (const double density : {0.0008, 0.003, 0.03, 0.3, 0.9, 0.02, 0.001}) {
    const auto x = sparse::random_sparse_vector(kDim, density, 31 + iter++);
    eng.spmv(Engine::Frontier::from_sparse(x), PlainSpmv{});
  }
  return runtime::make_run_report(eng, "differential").to_string();
}

using ConfigPair = std::pair<SwConfig, sim::HwConfig>;
using Params = std::tuple<ConfigPair, std::uint32_t>;

class DifferentialHarness : public ::testing::TestWithParam<Params> {};

TEST_P(DifferentialHarness, RunReportBitIdenticalToSerial) {
  const auto [cfg, threads] = GetParam();
  const std::string serial = pinned_report(cfg.first, cfg.second, 0);
  const std::string parallel = pinned_report(cfg.first, cfg.second, threads);
  EXPECT_EQ(serial, parallel)
      << "parallel run with " << threads
      << " thread(s) diverged from the serial engine";
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const ConfigPair cfg = std::get<0>(info.param);
  std::string name = cfg.first == SwConfig::kIP ? "IP" : "OP";
  name += sim::to_string(cfg.second);
  name += "x" + std::to_string(std::get<1>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DifferentialHarness,
    ::testing::Combine(
        ::testing::Values(ConfigPair{SwConfig::kIP, sim::HwConfig::kSC},
                          ConfigPair{SwConfig::kIP, sim::HwConfig::kSCS},
                          ConfigPair{SwConfig::kOP, sim::HwConfig::kPC},
                          ConfigPair{SwConfig::kOP, sim::HwConfig::kPS}),
        ::testing::Values(1u, 2u, 8u)),
    param_name);

TEST(DifferentialHarnessAuto, ReconfiguringSequenceBitIdenticalToSerial) {
  const std::string serial = auto_report(0);
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(serial, auto_report(threads)) << threads << " thread(s)";
  }
}

TEST(DifferentialHarnessAuto, ThreadCountsAgreeWithEachOther) {
  // Transitivity safety net: 2 and 8 threads must also match each other
  // (they do if both match serial, but a direct check localizes failures).
  EXPECT_EQ(auto_report(2), auto_report(8));
}

// Machine-level differential: drive the kernels directly (no engine, no
// decision layer) and compare cycles + stats + profile between immediate
// mode and an attached executor.
template <class S>
std::string machine_kernel_report(sim::HwConfig hw, bool outer,
                                  sim::ParallelExecutor* exec, const S& sr) {
  const sparse::Coo m = test_matrix();
  const sim::SystemConfig cfg = sim::SystemConfig::transmuter(4, 4);
  sim::Machine machine(cfg, hw);
  sim::MemProfiler prof;
  machine.set_profiler(&prof);
  machine.set_executor(exec);
  kernels::AddressMap amap(machine);
  Json doc = Json::object();
  if (outer) {
    const auto striped =
        kernels::OpStripedMatrix::build(m, cfg.num_tiles, true);
    const auto x = sparse::random_sparse_vector(kDim, 0.05, 7);
    const auto out = kernels::run_outer_product(machine, amap, striped, x,
                                                nullptr, sr);
    doc["touched"] = out.y.nnz();
  } else {
    const Index vb =
        hw == sim::HwConfig::kSCS ? kernels::default_vblock_cols(cfg) : 0;
    const auto part =
        kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), vb, true);
    const auto x = DenseFrontier::from_sparse(
        sparse::random_sparse_vector(kDim, 0.05, 7), sr.vector_identity());
    const auto out = kernels::run_inner_product(machine, amap, part, x, sr);
    doc["touched"] = out.num_touched;
  }
  doc["cycles"] = machine.cycles();
  doc["stats"] = machine.stats().to_json();
  Json tiles = Json::array();
  for (const auto& t : machine.tile_stats()) tiles.push_back(t.to_json());
  doc["tile_stats"] = std::move(tiles);
  doc["profile"] = prof.to_json();
  return doc.dump(1);
}

TEST(DifferentialHarnessMachine, KernelsBitIdenticalUnderExecutor) {
  sim::ParallelExecutor exec(3);
  for (const bool outer : {false, true}) {
    const auto hw = outer ? sim::HwConfig::kPC : sim::HwConfig::kSC;
    EXPECT_EQ(machine_kernel_report(hw, outer, nullptr, PlainSpmv{}),
              machine_kernel_report(hw, outer, &exec, PlainSpmv{}))
        << (outer ? "OP" : "IP");
    EXPECT_EQ(
        machine_kernel_report(hw, outer, nullptr, kernels::SsspSemiring{}),
        machine_kernel_report(hw, outer, &exec, kernels::SsspSemiring{}))
        << (outer ? "OP" : "IP") << " (tropical)";
  }
}

TEST(DifferentialHarnessMachine, SpmConfigsBitIdenticalUnderExecutor) {
  sim::ParallelExecutor exec(2);
  // SCS exercises the SPM-fill log path; PS the direct-to-L2 path.
  EXPECT_EQ(machine_kernel_report(sim::HwConfig::kSCS, false, nullptr,
                                  PlainSpmv{}),
            machine_kernel_report(sim::HwConfig::kSCS, false, &exec,
                                  PlainSpmv{}));
  EXPECT_EQ(
      machine_kernel_report(sim::HwConfig::kPS, true, nullptr, PlainSpmv{}),
      machine_kernel_report(sim::HwConfig::kPS, true, &exec, PlainSpmv{}));
}

}  // namespace
}  // namespace cosparse
