// Differential harness for the serving daemon (DESIGN.md §16).
//
// The guarantee under test: the report of a served trace is functionally
// byte-identical for every --serve-threads value. The schedule is fixed
// by a single-threaded DES before any host thread starts, per-request
// results are pure functions of (dataset, algo, source, iterations,
// seed), and wall-clock truth is confined to the timing/telemetry
// sections — so obs::functional_subset (what `cosparse-prof extract
// --functional` emits, and what the CI serve leg byte-compares across
// thread counts) must not differ by a single byte. Checked across both
// scheduler policies, both arrival processes, and both exec backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/report.h"
#include "serve/server.h"

namespace cosparse {
namespace {

serve::ServeConfig config(const std::string& scheduler,
                          const std::string& arrival,
                          const std::string& exec_mode) {
  serve::ServeConfig cfg;
  cfg.scheduler_type = scheduler;
  cfg.max_active_reqs = 12;
  cfg.max_batch_size = 4;
  cfg.virtual_workers = 2;
  cfg.exec_mode = exec_mode;
  cfg.system = "2x2";
  cfg.scale = 128;
  cfg.traffic.arrival = arrival;
  cfg.traffic.request_interval_us = 150;
  cfg.traffic.request_total_cnt = 24;
  cfg.traffic.seed = 17;
  cfg.traffic.datasets = {"twitter", "vsp"};
  cfg.traffic.algos = {"bfs", "sssp", "pagerank", "cf"};
  return cfg;
}

std::string functional_bytes(const serve::ServeConfig& cfg,
                             std::uint32_t threads) {
  serve::ServerOptions opts;
  opts.serve_threads = threads;
  serve::Server server(cfg, opts);
  return obs::functional_subset(server.replay()).dump();
}

TEST(ServeDifferential, ThreadCountNeverChangesFunctionalBytes) {
  for (const char* scheduler : {"same-dataset-batch", "fcfs"}) {
    for (const char* arrival : {"poisson", "bursty"}) {
      const serve::ServeConfig cfg = config(scheduler, arrival, "native");
      const std::string one = functional_bytes(cfg, 1);
      for (const std::uint32_t threads : {2u, 8u}) {
        EXPECT_EQ(one, functional_bytes(cfg, threads))
            << scheduler << "/" << arrival << " at " << threads
            << " serve threads";
      }
    }
  }
}

TEST(ServeDifferential, SimBackendMatchesNativeAcrossThreadCounts) {
  const serve::ServeConfig native_cfg =
      config("same-dataset-batch", "bursty", "native");
  const serve::ServeConfig sim_cfg =
      config("same-dataset-batch", "bursty", "sim");
  const std::string native_one = functional_bytes(native_cfg, 1);
  EXPECT_EQ(native_one, functional_bytes(sim_cfg, 1));
  EXPECT_EQ(native_one, functional_bytes(sim_cfg, 8));
}

TEST(ServeDifferential, ScheduleSectionIgnoresServeThreads) {
  // Stronger than the subset compare: the virtual schedule objects
  // themselves are built before execution and must be equal.
  const serve::ServeConfig cfg = config("same-dataset-batch", "poisson",
                                        "native");
  serve::ServerOptions one_opts;
  one_opts.serve_threads = 1;
  serve::Server one(cfg, one_opts);
  (void)one.replay();
  serve::ServerOptions eight_opts;
  eight_opts.serve_threads = 8;
  serve::Server eight(cfg, eight_opts);
  (void)eight.replay();
  EXPECT_EQ(serve::schedule_json(one.schedule()).dump(),
            serve::schedule_json(eight.schedule()).dump());
  ASSERT_EQ(one.schedule().responses.size(),
            eight.schedule().responses.size());
  for (std::size_t i = 0; i < one.schedule().responses.size(); ++i) {
    EXPECT_EQ(one.schedule().responses[i].digest,
              eight.schedule().responses[i].digest)
        << "request " << i + 1;
  }
}

}  // namespace
}  // namespace cosparse
