// cosparsed CLI driven in-process: exit codes, report/JSONL outputs,
// request-stream robustness, trace export, and SLO gating.
#include "cosparsed.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace cosparse::tools {
namespace {

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int run(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv = {"cosparsed"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cosparsed_main(static_cast<int>(argv.size()), argv.data(),
                                out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

std::string tiny_config_path(const std::string& name = "serve_cfg.json") {
  return write_temp(name, R"({
    "schema": "cosparse.serve_config/v1",
    "max_active_reqs": 8,
    "max_batch_size": 4,
    "virtual_workers": 2,
    "scale": 128,
    "traffic": {
      "request_interval_us": 200,
      "request_total_cnt": 12,
      "seed": 3,
      "datasets": ["twitter", "vsp"],
      "algos": ["bfs", "pagerank"]
    }
  })");
}

TEST(Cosparsed, UsageErrors) {
  std::string err;
  EXPECT_EQ(run({}, nullptr, &err), 2);  // --config required
  EXPECT_NE(err.find("--config"), std::string::npos);
  EXPECT_EQ(run({"--config", "/nonexistent/cfg.json",
                 "--report-out", ""}),
            2);
  const std::string bad =
      write_temp("bad_cfg.json", "{\"schema\": \"nope\"}");
  EXPECT_EQ(run({"--config", bad, "--report-out", ""}), 2);
  EXPECT_EQ(run({"--config", tiny_config_path(), "--exec-mode", "quantum",
                 "--report-out", ""}),
            2);
}

TEST(Cosparsed, ReplayWritesAWellFormedReport) {
  const std::string cfg = tiny_config_path();
  const std::string report_path = ::testing::TempDir() + "cd_report.json";
  std::string out;
  ASSERT_EQ(run({"--config", cfg, "--report-out", report_path}, &out), 0);
  EXPECT_NE(out.find("admitted"), std::string::npos);
  const Json report = Json::parse(read_file(report_path));
  EXPECT_EQ(report.find("schema")->as_string(), "cosparse.run_report/v1");
  EXPECT_EQ(report.find("tool")->as_string(), "cosparsed");
  ASSERT_NE(report.find("results"), nullptr);
  EXPECT_NE(report.find("results")->find("results_digest"), nullptr);
  EXPECT_NE(report.find("timing"), nullptr);
}

TEST(Cosparsed, RequestStreamToleratesHostileLines) {
  const std::string cfg = tiny_config_path();
  const std::string requests = write_temp("reqs.jsonl",
      "{\"dataset\": \"twitter\", \"algo\": \"bfs\", \"source\": 1}\n"
      "\n"
      "{\"dataset\": \"twitter\", \"algo\"\n"
      "{\"dataset\": \"nope\", \"algo\": \"bfs\"}\n"
      "{\"dataset\": \"vsp\", \"algo\": \"bfs\", \"sauce\": 1}\n"
      "{\"dataset\": \"vsp\", \"algo\": \"pagerank\"}\n");
  const std::string responses = ::testing::TempDir() + "cd_resp.jsonl";
  ASSERT_EQ(run({"--config", cfg, "--requests", requests,
                 "--report-out", "", "--responses-out", responses}),
            0);
  std::ifstream in(responses);
  std::string line;
  std::vector<Json> rs;
  while (std::getline(in, line)) rs.push_back(Json::parse(line));
  // Line numbers are ids; the blank line 2 yields no response.
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_EQ(rs[0].find("id")->as_int(), 1);
  EXPECT_EQ(rs[0].find("status")->as_string(), "ok");
  EXPECT_EQ(rs[1].find("id")->as_int(), 3);
  EXPECT_EQ(rs[1].find("status")->as_string(), "error");
  EXPECT_EQ(rs[2].find("id")->as_int(), 4);  // unknown dataset
  EXPECT_EQ(rs[2].find("status")->as_string(), "error");
  EXPECT_EQ(rs[3].find("id")->as_int(), 5);  // unknown field
  EXPECT_EQ(rs[3].find("status")->as_string(), "error");
  EXPECT_EQ(rs[3].find("error_field")->as_string(), "sauce");
  EXPECT_EQ(rs[4].find("id")->as_int(), 6);
  EXPECT_EQ(rs[4].find("status")->as_string(), "ok");
}

TEST(Cosparsed, TraceOutRoundTripsThroughRequests) {
  const std::string cfg = tiny_config_path();
  const std::string trace_path = ::testing::TempDir() + "cd_trace.jsonl";
  ASSERT_EQ(run({"--config", cfg, "--trace-out", trace_path}), 0);

  // Strip the generator-assigned ids (line numbers take over) and feed
  // the trace back: replay and request-stream mode must agree on the
  // per-request results digest.
  std::ifstream in(trace_path);
  std::ostringstream stripped;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    Json doc = Json::parse(line);
    Json resubmit = Json::object();
    for (const auto& [key, value] : doc.members())
      if (key != "id") resubmit[key] = value;
    stripped << resubmit.dump() << "\n";
    ++lines;
  }
  ASSERT_EQ(lines, 12u);
  const std::string requests =
      write_temp("cd_trace_requests.jsonl", stripped.str());

  const std::string replay_report = ::testing::TempDir() + "cd_replay.json";
  const std::string stream_report = ::testing::TempDir() + "cd_stream.json";
  ASSERT_EQ(run({"--config", cfg, "--report-out", replay_report}), 0);
  ASSERT_EQ(run({"--config", cfg, "--requests", requests,
                 "--report-out", stream_report}),
            0);
  const Json replay = Json::parse(read_file(replay_report));
  const Json stream = Json::parse(read_file(stream_report));
  EXPECT_EQ(
      replay.find("results")->find("results_digest")->as_string(),
      stream.find("results")->find("results_digest")->as_string());
}

TEST(Cosparsed, ReportIsByteStableAcrossRuns) {
  const std::string cfg = tiny_config_path();
  const std::string a = ::testing::TempDir() + "cd_a.json";
  const std::string b = ::testing::TempDir() + "cd_b.json";
  ASSERT_EQ(run({"--config", cfg, "--report-out", a,
                 "--serve-threads", "1"}),
            0);
  ASSERT_EQ(run({"--config", cfg, "--report-out", b,
                 "--serve-threads", "8"}),
            0);
  const Json ra = Json::parse(read_file(a));
  const Json rb = Json::parse(read_file(b));
  EXPECT_EQ(ra.find("results")->dump(), rb.find("results")->dump());
}

TEST(Cosparsed, StrictSloViolationExitsThree) {
  const std::string cfg = tiny_config_path();
  EXPECT_EQ(run({"--config", cfg, "--report-out", "",
                 "--telemetry-interval", "1i",
                 "--slo", "p99.serve.request_ms<0.000001", "--slo-strict"}),
            3);
  EXPECT_EQ(run({"--config", cfg, "--report-out", "",
                 "--telemetry-interval", "1i",
                 "--slo", "p99.serve.request_ms<100000"}),
            0);
}

}  // namespace
}  // namespace cosparse::tools
