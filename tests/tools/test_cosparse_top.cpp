// cosparse-top renderer tests: parse_snapshots on well-formed / torn
// streams and the dashboard layout (header echo, metric table, per-tile
// bars, SLO lines) on crafted snapshots, plus the CLI's exit codes.
#include "cosparse_top.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace cosparse::tools {
namespace {

const char* kTwoSnapshots =
    R"({"schema":"cosparse.telemetry/v1","seq":0,"wall_ms":100,"iterations":4,)"
    R"("header":{"tool":"unit","sim_threads":2},)"
    R"("hist":{"engine.iteration_ms":{"count":4,"sum":8,"min":1,"max":3,)"
    R"("p50":2,"p90":3,"p99":3,"p999":3}}})"
    "\n"
    R"({"schema":"cosparse.telemetry/v1","seq":1,"wall_ms":300,"iterations":8,)"
    R"("header":{"tool":"unit","sim_threads":2},)"
    R"("hist":{"engine.iteration_ms":{"count":8,"sum":20,"min":1,"max":5,)"
    R"("p50":2,"p90":4,"p99":5,"p999":5}},)"
    R"("extra":{"tile_busy_cycles":[100,50,0,100],"hw":"SC",)"
    R"("load_imbalance":1.6},)"
    R"("slo_violations":[{"seq":1,"rule":"p99.engine.iteration_ms<1",)"
    R"("observed":5,"threshold":1,)"
    R"("message":"SLO violated at snapshot 1: p99.engine.iteration_ms<1"}]})"
    "\n";

TEST(CosparseTop, ParsesCompleteLinesAndSkipsTornOnes) {
  const auto snaps = parse_snapshots(std::string(kTwoSnapshots) +
                                     R"({"schema":"cosparse.telem)");  // torn
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].find("seq")->as_int(), 0);
  EXPECT_EQ(snaps[1].find("seq")->as_int(), 1);
}

TEST(CosparseTop, EmptyStreamRendersWaitingPlaceholder) {
  std::ostringstream os;
  render_dashboard(os, parse_snapshots(""));
  EXPECT_NE(os.str().find("waiting for snapshots"), std::string::npos);
}

TEST(CosparseTop, DashboardShowsHeaderProgressAndRates) {
  std::ostringstream os;
  render_dashboard(os, parse_snapshots(kTwoSnapshots));
  const std::string out = os.str();
  EXPECT_NE(out.find("tool=unit"), std::string::npos);
  EXPECT_NE(out.find("sim_threads=2"), std::string::npos);
  EXPECT_NE(out.find("snapshot #1"), std::string::npos);
  // 4 iterations over 200 ms between the snapshots -> 20 it/s.
  EXPECT_NE(out.find("20.0 it/s"), std::string::npos);
  EXPECT_NE(out.find("engine.iteration_ms"), std::string::npos);
}

TEST(CosparseTop, DashboardRendersTileBarsAndSlo) {
  std::ostringstream os;
  render_dashboard(os, parse_snapshots(kTwoSnapshots));
  const std::string out = os.str();
  EXPECT_NE(out.find("tile 0"), std::string::npos);
  EXPECT_NE(out.find("tile 3"), std::string::npos);
  EXPECT_NE(out.find("hw=SC"), std::string::npos);
  // Tile 0 is at max busy: a full 40-char bar. Tile 2 is idle: empty.
  EXPECT_NE(out.find(std::string(40, '#')), std::string::npos);
  EXPECT_NE(out.find("|" + std::string(40, ' ') + "|"), std::string::npos);
  EXPECT_NE(out.find("SLO violations (1)"), std::string::npos);
  EXPECT_NE(out.find("p99.engine.iteration_ms<1"), std::string::npos);
}

TEST(CosparseTop, SingleSnapshotOmitsRates) {
  const std::string one =
      R"({"schema":"cosparse.telemetry/v1","seq":0,"wall_ms":1,)"
      R"("iterations":1,"header":{},"hist":{}})" "\n";
  std::ostringstream os;
  render_dashboard(os, parse_snapshots(one));
  EXPECT_EQ(os.str().find("it/s"), std::string::npos);
  EXPECT_NE(os.str().find("no metrics yet"), std::string::npos);
}

TEST(CosparseTop, NarrowWidthTruncatesInsteadOfWrapping) {
  // A 48-column terminal: every rendered line fits, the busy bars shrink
  // (48 - 24 = 24 chars), and the percentile table is clipped rather than
  // wrapped — a wrapped line would tear the --follow repaint.
  std::ostringstream os;
  render_dashboard(os, parse_snapshots(kTwoSnapshots), 48);
  std::istringstream lines(os.str());
  std::string line;
  bool saw_tile_bar = false;
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), 48u) << "line: " << line;
    if (line.rfind("  tile 0", 0) == 0) {
      saw_tile_bar = true;
      // Tile 0 is at max busy: a full but narrowed bar.
      EXPECT_NE(line.find(std::string(24, '#')), std::string::npos) << line;
      EXPECT_EQ(line.find(std::string(40, '#')), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_tile_bar);
  // The content survives truncation: header and metric names still show.
  EXPECT_NE(os.str().find("tool=unit"), std::string::npos);
  EXPECT_NE(os.str().find("engine.iteration_ms"), std::string::npos);
}

TEST(CosparseTop, VeryNarrowWidthClampsBarsToAMinimum) {
  // Below 32 columns the bars clamp at 8 chars instead of vanishing.
  std::ostringstream os;
  render_dashboard(os, parse_snapshots(kTwoSnapshots), 20);
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), 20u) << "line: " << line;
  }
  EXPECT_NE(os.str().find(std::string(8, '#')), std::string::npos);
}

TEST(CosparseTop, ZeroWidthMeansUnlimited) {
  // width 0 (piped output, or --width 0) renders the classic full-width
  // frame byte-for-byte.
  std::ostringstream wide, classic;
  render_dashboard(wide, parse_snapshots(kTwoSnapshots), 0);
  render_dashboard(classic, parse_snapshots(kTwoSnapshots));
  EXPECT_EQ(wide.str(), classic.str());
  EXPECT_NE(wide.str().find(std::string(40, '#')), std::string::npos);
}

TEST(CosparseTop, MainAcceptsWidthOption) {
  const std::string path = ::testing::TempDir() + "cosparse_top_w.jsonl";
  {
    std::ofstream out(path);
    out << kTwoSnapshots;
  }
  std::ostringstream out, err;
  const char* argv[] = {"cosparse-top", path.c_str(), "--width", "48"};
  EXPECT_EQ(top_main(4, argv, out, err), 0);
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), 48u) << "line: " << line;
  }
  std::ostringstream out2, err2;
  const char* bad[] = {"cosparse-top", path.c_str(), "--width", "-3"};
  EXPECT_EQ(top_main(4, bad, out2, err2), 2);
}

TEST(CosparseTop, MainRendersAFileOnce) {
  const std::string path = ::testing::TempDir() + "cosparse_top_in.jsonl";
  {
    std::ofstream out(path);
    out << kTwoSnapshots;
  }
  std::ostringstream out, err;
  const char* argv[] = {"cosparse-top", path.c_str()};
  EXPECT_EQ(top_main(2, argv, out, err), 0);
  EXPECT_NE(out.str().find("cosparse-top"), std::string::npos);
  // One-shot mode paints no ANSI clear sequences.
  EXPECT_EQ(out.str().find("\x1b["), std::string::npos);
}

TEST(CosparseTop, MainFollowModeRepaintsBoundedFrames) {
  const std::string path = ::testing::TempDir() + "cosparse_top_f.jsonl";
  {
    std::ofstream out(path);
    out << kTwoSnapshots;
  }
  std::ostringstream out, err;
  const char* argv[] = {"cosparse-top", path.c_str(),     "--follow",
                        "--frames",     "2",              "--refresh-ms",
                        "1"};
  EXPECT_EQ(top_main(7, argv, out, err), 0);
  // Two frames, each starting with the home+clear escape.
  std::size_t clears = 0;
  for (std::size_t at = out.str().find("\x1b[H\x1b[2J");
       at != std::string::npos; at = out.str().find("\x1b[H\x1b[2J", at + 1)) {
    ++clears;
  }
  EXPECT_EQ(clears, 2u);
}

TEST(CosparseTop, MainRejectsBadUsage) {
  std::ostringstream out, err;
  const char* no_file[] = {"cosparse-top"};
  EXPECT_EQ(top_main(1, no_file, out, err), 2);
  const char* bad_opt[] = {"cosparse-top", "x.jsonl", "--bogus"};
  EXPECT_EQ(top_main(3, bad_opt, out, err), 2);
  const char* missing[] = {"cosparse-top", "/nonexistent/t.jsonl"};
  EXPECT_EQ(top_main(2, missing, out, err), 2);
}

}  // namespace
}  // namespace cosparse::tools
