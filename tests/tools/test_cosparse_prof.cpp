// cosparse-prof diff/summarize logic on crafted report documents.
#include "cosparse_prof.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace cosparse::tools {
namespace {

Json report_with(std::int64_t cycles, std::int64_t l1_misses,
                 std::int64_t l2_misses, std::int64_t dram_read,
                 std::int64_t dram_write) {
  Json doc = Json::object();
  doc["schema"] = "cosparse.run_report/v1";
  doc["tool"] = "crafted";
  doc["totals"]["cycles"] = cycles;
  doc["stats"]["l1_misses"] = l1_misses;
  doc["stats"]["l2_misses"] = l2_misses;
  doc["stats"]["dram_read_bytes"] = dram_read;
  doc["stats"]["dram_write_bytes"] = dram_write;
  return doc;
}

TEST(ParseRegressLimit, AcceptsPercentAndFractionForms) {
  EXPECT_DOUBLE_EQ(parse_regress_limit("5%"), 0.05);
  EXPECT_DOUBLE_EQ(parse_regress_limit("5"), 0.05);
  EXPECT_DOUBLE_EQ(parse_regress_limit("12.5%"), 0.125);
  EXPECT_DOUBLE_EQ(parse_regress_limit("0.05x"), 0.05);
  EXPECT_DOUBLE_EQ(parse_regress_limit("0"), 0.0);
}

TEST(ParseRegressLimit, RejectsMalformedAndNegative) {
  EXPECT_THROW((void)parse_regress_limit(""), Error);
  EXPECT_THROW((void)parse_regress_limit("abc"), Error);
  EXPECT_THROW((void)parse_regress_limit("5%%"), Error);
  EXPECT_THROW((void)parse_regress_limit("5 percent"), Error);
  EXPECT_THROW((void)parse_regress_limit("-5%"), Error);
}

TEST(Diff, SelfDiffIsClean) {
  const Json doc = report_with(1000, 100, 50, 4096, 2048);
  const DiffResult r = diff_reports(doc, doc, DiffOptions{});
  EXPECT_FALSE(r.regressed);
  ASSERT_FALSE(r.rows.empty());
  for (const DiffRow& row : r.rows) {
    EXPECT_FALSE(row.regressed) << row.metric;
    EXPECT_DOUBLE_EQ(row.rel_change, 0.0) << row.metric;
  }
}

TEST(Diff, TenPercentWorseCyclesRegressesAtDefaultLimit) {
  const Json base = report_with(1000, 100, 50, 4096, 2048);
  const Json cand = report_with(1100, 100, 50, 4096, 2048);
  const DiffResult r = diff_reports(base, cand, DiffOptions{});
  EXPECT_TRUE(r.regressed);
  for (const DiffRow& row : r.rows) {
    if (row.metric == "cycles") {
      EXPECT_TRUE(row.regressed);
      EXPECT_NEAR(row.rel_change, 0.10, 1e-12);
    } else {
      EXPECT_FALSE(row.regressed) << row.metric;
    }
  }
}

TEST(Diff, WithinLimitPasses) {
  const Json base = report_with(1000, 100, 50, 4096, 2048);
  const Json cand = report_with(1040, 103, 51, 4100, 2100);  // all < 5%
  EXPECT_FALSE(diff_reports(base, cand, DiffOptions{}).regressed);
}

TEST(Diff, LimitIsConfigurable) {
  const Json base = report_with(1000, 100, 50, 4096, 2048);
  const Json cand = report_with(1100, 100, 50, 4096, 2048);  // +10% cycles
  DiffOptions loose;
  loose.max_regress = 0.15;
  EXPECT_FALSE(diff_reports(base, cand, loose).regressed);
  DiffOptions tight;
  tight.max_regress = 0.01;
  EXPECT_TRUE(diff_reports(base, cand, tight).regressed);
}

TEST(Diff, ImprovementNeverRegresses) {
  const Json base = report_with(1000, 100, 50, 4096, 2048);
  const Json cand = report_with(500, 10, 5, 1024, 512);
  EXPECT_FALSE(diff_reports(base, cand, DiffOptions{}).regressed);
}

TEST(Diff, DramBytesCombineReadAndWrite) {
  const Json base = report_with(1000, 100, 50, 4096, 2048);  // 6144 B
  // Reads shrink, writes balloon: combined +25% must gate.
  const Json cand = report_with(1000, 100, 50, 1024, 6656);  // 7680 B
  const DiffResult r = diff_reports(base, cand, DiffOptions{});
  EXPECT_TRUE(r.regressed);
  for (const DiffRow& row : r.rows) {
    if (row.metric == "dram_bytes") EXPECT_TRUE(row.regressed);
  }
}

TEST(Diff, MissingMetricsAreSkippedNotRegressed) {
  Json base = Json::object();
  base["totals"]["cycles"] = 1000;
  Json cand = Json::object();
  cand["stats"]["l1_misses"] = 100;  // disjoint metric sets
  const DiffResult r = diff_reports(base, cand, DiffOptions{});
  EXPECT_FALSE(r.regressed);
  EXPECT_TRUE(r.rows.empty());
}

TEST(Diff, ZeroBaselineWithGrowthRegresses) {
  const Json base = report_with(1000, 0, 50, 4096, 2048);
  const Json cand = report_with(1000, 7, 50, 4096, 2048);
  EXPECT_TRUE(diff_reports(base, cand, DiffOptions{}).regressed);
}

TEST(Diff, PerRegionMissesAreInformationalOnly) {
  Json base = report_with(1000, 100, 50, 4096, 2048);
  base["memory_profile"]["regions"]["matrix.elems"]["counters"]
      ["l1_misses"] = 10;
  Json cand = report_with(1000, 100, 50, 4096, 2048);
  cand["memory_profile"]["regions"]["matrix.elems"]["counters"]
      ["l1_misses"] = 100;  // 10x worse, but not a gated metric
  const DiffResult r = diff_reports(base, cand, DiffOptions{});
  EXPECT_FALSE(r.regressed);
  bool saw_region_row = false;
  for (const DiffRow& row : r.rows) {
    if (row.metric == "region:matrix.elems.l1_misses") {
      saw_region_row = true;
      EXPECT_FALSE(row.gated);
      EXPECT_NEAR(row.rel_change, 9.0, 1e-12);
    }
  }
  EXPECT_TRUE(saw_region_row);
}

std::string write_temp(const std::string& name, const Json& doc) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << doc.dump(2);
  return path;
}

int run_main(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"cosparse-prof"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  return prof_main(static_cast<int>(argv.size()), argv.data());
}

TEST(ProfMain, ExitCodesMatchDiffOutcome) {
  const std::string base =
      write_temp("prof_base.json", report_with(1000, 100, 50, 4096, 2048));
  const std::string worse =
      write_temp("prof_worse.json", report_with(1100, 100, 50, 4096, 2048));
  EXPECT_EQ(run_main({"diff", base, base}), 0);
  EXPECT_EQ(run_main({"diff", base, worse}), 1);
  EXPECT_EQ(run_main({"diff", base, worse, "--max-regress", "20%"}), 0);
  EXPECT_EQ(run_main({"diff", base, worse, "--max-regress=20%"}), 0);
}

TEST(ProfMain, UsageAndValidationErrors) {
  EXPECT_EQ(run_main({}), 2);                       // no subcommand
  EXPECT_EQ(run_main({"frobnicate"}), 2);           // unknown subcommand
  EXPECT_EQ(run_main({"diff", "only-one.json"}), 2);
  EXPECT_EQ(run_main({"diff", "a.json", "b.json", "--bogus"}), 2);
  EXPECT_EQ(run_main({"summarize", "/nonexistent/report.json"}), 1);
  EXPECT_EQ(run_main({"help"}), 0);
}

std::string write_text(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(SummarizeTelemetry, EmptyStreamSaysNoSnapshotsAndExitsZero) {
  // An empty (or not-yet-flushed) JSONL stream is a normal sight when
  // summarizing right after a run starts: report it, don't fail.
  std::ostringstream os;
  summarize_telemetry(os, "", "empty.jsonl");
  EXPECT_NE(os.str().find("(no snapshots)"), std::string::npos);

  const std::string path = write_text("prof_empty.jsonl", "");
  EXPECT_EQ(run_main({"summarize", "--telemetry", path}), 0);
}

TEST(SummarizeTelemetry, WhitespaceOnlyLinesCountAsEmpty) {
  std::ostringstream os;
  summarize_telemetry(os, "\n   \n\t\r\n", "blank.jsonl");
  EXPECT_NE(os.str().find("(no snapshots)"), std::string::npos);
}

TEST(SummarizeTelemetry, ZeroMetricSnapshotSaysNoMetrics) {
  // A cadence tick before any histogram observed anything: the snapshot
  // line renders, but with "(no metrics)" instead of an empty table.
  const std::string snap =
      R"({"schema":"cosparse.telemetry/v1","seq":0,"wall_ms":1,)"
      R"("iterations":0,"header":{"tool":"unit"},"hist":{}})" "\n";
  std::ostringstream os;
  summarize_telemetry(os, snap, "zero.jsonl");
  const std::string out = os.str();
  EXPECT_NE(out.find("snapshot 0"), std::string::npos);
  EXPECT_NE(out.find("(no metrics)"), std::string::npos);
  EXPECT_EQ(out.find("Δcount"), std::string::npos);  // no table header

  const std::string path = write_text("prof_zero.jsonl", snap);
  EXPECT_EQ(run_main({"summarize", "--telemetry", path}), 0);
}

TEST(SummarizeTelemetry, UnparseableLineThrowsWithLineNumber) {
  std::ostringstream os;
  try {
    summarize_telemetry(os, "{\"seq\":0}\n{torn", "torn.jsonl");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

const char* kFoldedA = "x.one;sym_a 50\nx.two;sym_b 50\n";
const char* kFoldedB = "x.one;sym_a 30\nx.two;sym_b 70\n";

TEST(ProfMain, FlameWritesHtmlAndPrintsPhases) {
  const std::string folded = write_text("prof_flame.folded", kFoldedA);
  const std::string html = ::testing::TempDir() + "prof_flame.html";
  EXPECT_EQ(run_main({"flame", folded, "--out", html}), 0);
  std::ifstream in(html);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("<svg"), std::string::npos);
  EXPECT_NE(buf.str().find("x.one"), std::string::npos);
}

TEST(ProfMain, FlameDefaultsToInputDotHtml) {
  const std::string folded = write_text("prof_flame_d.folded", kFoldedA);
  EXPECT_EQ(run_main({"flame", folded}), 0);
  std::ifstream in(folded + ".html");
  EXPECT_TRUE(in.good());
}

TEST(ProfMain, FlameUsageAndParseErrors) {
  EXPECT_EQ(run_main({"flame"}), 2);  // no input
  const std::string a = write_text("prof_fa.folded", kFoldedA);
  const std::string b = write_text("prof_fb.folded", kFoldedB);
  EXPECT_EQ(run_main({"flame", a, b}), 2);  // too many inputs
  EXPECT_EQ(run_main({"flame", a, "--bogus"}), 2);
  EXPECT_EQ(run_main({"flame", "/nonexistent/p.folded"}), 1);
  const std::string bad = write_text("prof_bad.folded", "no count here\n");
  EXPECT_EQ(run_main({"flame", bad}), 1);
}

TEST(ProfMain, FlameDiffExitCodesMatchShareGate) {
  const std::string a = write_text("prof_da.folded", kFoldedA);
  const std::string b = write_text("prof_db.folded", kFoldedB);
  // Self-diff is clean; a 20-point share swing trips the default 5%
  // gate and passes a loosened 25% one — the `diff` exit-code contract.
  EXPECT_EQ(run_main({"flamediff", a, a}), 0);
  EXPECT_EQ(run_main({"flamediff", a, b}), 1);
  EXPECT_EQ(run_main({"flamediff", a, b, "--max-regress", "25%"}), 0);
  EXPECT_EQ(run_main({"flamediff", a, b, "--max-regress=25%"}), 0);
}

TEST(ProfMain, FlameDiffUsageErrors) {
  const std::string a = write_text("prof_ua.folded", kFoldedA);
  EXPECT_EQ(run_main({"flamediff", a}), 2);              // one input
  EXPECT_EQ(run_main({"flamediff", a, a, a}), 2);        // three inputs
  EXPECT_EQ(run_main({"flamediff", a, a, "--bogus"}), 2);
  EXPECT_EQ(run_main({"flamediff", a, "/nonexistent/q.folded"}), 1);
}

TEST(Summarize, PrintsRegionAndDecisionTables) {
  Json doc = report_with(1000, 100, 50, 4096, 2048);
  Json& region = doc["memory_profile"]["regions"]["matrix.elems"];
  region["counters"]["l1_hits"] = 900;
  region["counters"]["l1_misses"] = 100;
  Json rec = Json::object();
  rec["invocation"] = 0;
  rec["sw"] = "IP";
  rec["hw"] = "SC";
  rec["cvd"] = 0.02;
  rec["features"]["vector_density"] = 0.5;
  doc["decision_audit"]["invocations"].push_back(std::move(rec));

  std::ostringstream os;
  summarize_report(os, doc, "crafted");
  const std::string text = os.str();
  EXPECT_NE(text.find("matrix.elems"), std::string::npos);
  EXPECT_NE(text.find("decision timeline"), std::string::npos);
  EXPECT_NE(text.find("IP/SC"), std::string::npos);
}

}  // namespace
}  // namespace cosparse::tools
