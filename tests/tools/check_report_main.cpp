// check_report <report.json>
//
// Validates a cosparse.run_report/v1 document against the schema checks in
// tests/obs/report_schema.h (schema/tool fields, per-tile stats summing to
// the global stats, well-formed iteration records). Exit 0 on success,
// 1 with a diagnostic on the first violation. Used by the CTest smoke test
// that runs examples/quickstart with --report-out.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/json.h"
#include "../obs/report_schema.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: check_report <report.json>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in.good()) {
    std::cerr << "check_report: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    const cosparse::Json doc = cosparse::Json::parse(buf.str());
    const std::string err = cosparse::obs::testing::check_report(doc);
    if (!err.empty()) {
      std::cerr << "check_report: " << argv[1] << ": " << err << "\n";
      return 1;
    }
  } catch (const cosparse::Error& e) {
    std::cerr << "check_report: " << argv[1] << ": " << e.what() << "\n";
    return 1;
  }
  std::cout << "check_report: " << argv[1] << " OK\n";
  return 0;
}
