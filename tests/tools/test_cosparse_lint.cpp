// cosparse-lint golden-findings tests: each seeded defect class must be
// detected with the right finding id, severity and source location, and a
// clean plan (the shipped quickstart defaults) must pass with exit 0.
#include "cosparse_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cosparse::tools {
namespace {

using verify::Finding;
using verify::LintReport;
using verify::Severity;

const Finding* find_id(const LintReport& r, const std::string& id) {
  const auto it =
      std::find_if(r.findings().begin(), r.findings().end(),
                   [&](const Finding& f) { return f.id == id; });
  return it == r.findings().end() ? nullptr : &*it;
}

LintReport lint(const std::string& text) {
  return verify::lint_plan_json(Json::parse(text), "crafted");
}

// The shipped examples/plans/quickstart.plan.json content.
constexpr const char* kQuickstartPlan = R"({
  "schema": "cosparse.run_plan/v1",
  "name": "quickstart",
  "system": {"num_tiles": 4, "pes_per_tile": 8},
  "dataset": {"vertices": 20000, "edges": 200000},
  "kernel": {"sw": "auto", "hw": "auto", "vblocked": true}
})";

TEST(CosparseLint, QuickstartDefaultsPassClean) {
  const LintReport r = lint(kQuickstartPlan);
  EXPECT_TRUE(r.clean()) << r.to_json().dump(2);
}

// ---- seeded defect class 1: illegal OP+SCS pair ----
TEST(CosparseLint, DetectsIllegalOpScsPair) {
  const LintReport r = lint(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000},
    "kernel": {"sw": "OP", "hw": "SCS"}
  })");
  const Finding* f = find_id(r, "config.illegal-pair");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->location.kind, "config_field");
  EXPECT_EQ(f->location.name, "kernel.hw");
  EXPECT_FALSE(r.clean());
}

// ---- seeded defect class 2: overlapping explicit regions ----
TEST(CosparseLint, DetectsOverlappingRegions) {
  const LintReport r = lint(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000},
    "regions": [
      {"label": "matrix.elems", "bytes": 8192, "base": 0},
      {"label": "vector.dense", "bytes": 8192, "base": 4096}
    ]
  })");
  const Finding* f = find_id(r, "address.overlap");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->location.kind, "region");
  EXPECT_EQ(f->location.name, "vector.dense");
  EXPECT_FALSE(r.clean());
}

// ---- seeded defect class 3: SPM overflow under PS ----
TEST(CosparseLint, DetectsSpmOverflowUnderPs) {
  const LintReport r = lint(R"({
    "schema": "cosparse.run_plan/v1",
    "system": {"num_tiles": 2, "pes_per_tile": 4},
    "dataset": {"vertices": 1000, "edges": 8000},
    "kernel": {"sw": "OP", "hw": "PS"},
    "regions": [
      {"label": "op.heap", "bytes": 6000, "scope": "per_pe", "spm": true}
    ]
  })");
  const Finding* f = find_id(r, "address.spm-overflow");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->location.name, "op.heap");
  EXPECT_FALSE(r.clean());
}

// ---- seeded defect class 4: decision-tree gap and overlap ----
TEST(CosparseLint, DetectsDecisionTreeGapAndOverlap) {
  const LintReport gap = lint(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000},
    "decision_tree": {"rules": [
      {"node": "low", "sw": "OP", "hw": "PC",
       "density": {"lo": 0.0, "hi": 0.3}},
      {"node": "high", "sw": "IP", "hw": "SC",
       "density": {"lo": 0.6, "hi": null}}
    ]}
  })");
  const Finding* g = find_id(gap, "tree.gap");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_FALSE(gap.clean());

  const LintReport overlap = lint(R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000},
    "decision_tree": {"rules": [
      {"node": "a", "sw": "OP", "hw": "PC",
       "density": {"lo": 0.0, "hi": 0.5}},
      {"node": "b", "sw": "IP", "hw": "SC",
       "density": {"lo": 0.4, "hi": null}}
    ]}
  })");
  const Finding* o = find_id(overlap, "tree.overlap");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->severity, Severity::kError);
  EXPECT_EQ(o->location.kind, "tree_node");
  EXPECT_FALSE(overlap.clean());
}

TEST(CosparseLint, MalformedPlanBecomesFindingNotCrash) {
  const LintReport r = lint(R"({"schema": "cosparse.run_plan/v9"})");
  ASSERT_NE(find_id(r, "plan.malformed"), nullptr);
  EXPECT_FALSE(r.clean());
}

// ---- CLI driver: exit codes and output modes ----

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

int run_cli(const std::vector<std::string>& args, std::string* out_text) {
  std::vector<const char*> argv{"cosparse-lint"};
  for (const auto& a : args) argv.push_back(a.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int rc =
      lint_main(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return rc;
}

TEST(CosparseLintCli, CleanPlanExitsZero) {
  const auto path = write_temp("clean.plan.json", kQuickstartPlan);
  std::string text;
  EXPECT_EQ(run_cli({"plan", path}, &text), 0);
  EXPECT_NE(text.find("0 error(s)"), std::string::npos);
}

TEST(CosparseLintCli, ErrorsGateWithNonzeroExit) {
  const auto path = write_temp("bad.plan.json", R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 1000, "edges": 8000},
    "kernel": {"sw": "OP", "hw": "SCS"}
  })");
  std::string text;
  EXPECT_EQ(run_cli({"plan", path}, &text), 1);
  EXPECT_NE(text.find("config.illegal-pair"), std::string::npos);
}

TEST(CosparseLintCli, StrictPromotesWarningsToFailure) {
  // Unknown plan field: a warning, so default passes but --strict fails.
  const auto path = write_temp("warn.plan.json", R"({
    "schema": "cosparse.run_plan/v1",
    "dataset": {"vertices": 20000, "edges": 200000},
    "frobnicate": 1
  })");
  EXPECT_EQ(run_cli({"plan", path}, nullptr), 0);
  EXPECT_EQ(run_cli({"plan", path, "--strict"}, nullptr), 1);
}

TEST(CosparseLintCli, JsonOutputIsALintFindingsDocument) {
  const auto path = write_temp("clean2.plan.json", kQuickstartPlan);
  std::string text;
  EXPECT_EQ(run_cli({"plan", path, "--json"}, &text), 0);
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.find("schema")->as_string(), verify::kLintFindingsSchema);
  EXPECT_EQ(doc.find("tool")->as_string(), "cosparse-lint");
  EXPECT_EQ(doc.find("subcommand")->as_string(), "plan");
  const auto& subjects = doc.find("subjects")->items();
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(subjects[0].find("subject")->as_string(), "quickstart");
  ASSERT_NE(subjects[0].find("summary"), nullptr);
  ASSERT_NE(doc.find("summary"), nullptr);
  EXPECT_EQ(doc.find("summary")->find("errors")->as_int(), 0);
}

TEST(CosparseLintCli, ReportSubcommandValidatesRunReports) {
  const auto good = write_temp("good.report.json", R"({
    "schema": "cosparse.run_report/v1", "tool": "test"
  })");
  const auto bad = write_temp("bad.report.json", R"({
    "schema": "cosparse.run_report/v1", "tool": "test",
    "stats": {"l1_misses": 10},
    "tile_stats": [{"l1_misses": 1}]
  })");
  EXPECT_EQ(run_cli({"report", good}, nullptr), 0);
  std::string text;
  EXPECT_EQ(run_cli({"report", bad}, &text), 1);
  EXPECT_NE(text.find("report.tile-sum-mismatch"), std::string::npos);
}

TEST(CosparseLintCli, UsageErrors) {
  EXPECT_EQ(run_cli({}, nullptr), 2);
  EXPECT_EQ(run_cli({"plan", "/nonexistent/x.json"}, nullptr), 2);
  EXPECT_EQ(run_cli({"plan", "--bogus-flag"}, nullptr), 2);
}

TEST(CosparseLintCli, ReportOutWritesDocument) {
  const auto plan = write_temp("clean3.plan.json", kQuickstartPlan);
  const auto out_path = ::testing::TempDir() + "lint_report.json";
  EXPECT_EQ(run_cli({"plan", plan, "--report-out", out_path}, nullptr), 0);
  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  EXPECT_EQ(doc.find("schema")->as_string(), verify::kLintFindingsSchema);
}

// ---- --baseline: shared suppression across subcommands ----

constexpr const char* kIllegalPairPlan = R"({
  "schema": "cosparse.run_plan/v1",
  "dataset": {"vertices": 1000, "edges": 8000},
  "kernel": {"sw": "OP", "hw": "SCS"}
})";

TEST(CosparseLintCli, BaselineSuppressesKnownFindings) {
  const auto plan = write_temp("baselined.plan.json", kIllegalPairPlan);
  const auto baseline = write_temp("suppress.baseline.json", R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "config", "id": "config.illegal-pair"}]
  })");
  // Without the baseline the plan gates; with it the finding stays
  // visible (marked suppressed) but the exit code drops to 0.
  EXPECT_EQ(run_cli({"plan", plan}, nullptr), 1);
  std::string text;
  EXPECT_EQ(run_cli({"plan", plan, "--baseline", baseline}, &text), 0);
  EXPECT_NE(text.find("suppressed error[config.illegal-pair]"),
            std::string::npos);
  EXPECT_NE(text.find("1 suppressed"), std::string::npos);
}

TEST(CosparseLintCli, BaselineLocationNarrowsTheMatch) {
  const auto plan = write_temp("narrow.plan.json", kIllegalPairPlan);
  const auto wrong_loc = write_temp("narrow.baseline.json", R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "config", "id": "config.illegal-pair",
                  "location": "some.other.field"}]
  })");
  EXPECT_EQ(run_cli({"plan", plan, "--baseline", wrong_loc}, nullptr), 1);
}

TEST(CosparseLintCli, BadBaselineIsAUsageError) {
  const auto plan = write_temp("ok.plan.json", kQuickstartPlan);
  const auto bad = write_temp("bad.baseline.json", R"({"schema": "nope"})");
  EXPECT_EQ(run_cli({"plan", plan, "--baseline", bad}, nullptr), 2);
  EXPECT_EQ(run_cli({"plan", plan, "--baseline", "/nonexistent.json"},
                    nullptr),
            2);
}

TEST(CosparseLintCli, SuppressedFindingsAreMarkedInJson) {
  const auto plan = write_temp("marked.plan.json", kIllegalPairPlan);
  const auto baseline = write_temp("marked.baseline.json", R"({
    "schema": "cosparse.lint_baseline/v1",
    "suppress": [{"pass": "config", "id": "config.illegal-pair",
                  "location": "kernel.hw"}]
  })");
  std::string text;
  EXPECT_EQ(run_cli({"plan", plan, "--baseline", baseline, "--json"}, &text),
            0);
  const Json doc = Json::parse(text);
  const Json& subject = doc.find("subjects")->items()[0];
  EXPECT_GE(subject.find("summary")->find("suppressed")->as_int(), 1);
  bool saw_marker = false;
  for (const Json& f : subject.find("findings")->items()) {
    if (f.find("id")->as_string() == "config.illegal-pair") {
      const Json* sup = f.find("suppressed");
      saw_marker = sup != nullptr && sup->as_bool();
    }
  }
  EXPECT_TRUE(saw_marker);
}

}  // namespace
}  // namespace cosparse::tools
