// SampleProfiler unit tests: capture real SIGPROF samples from a busy
// loop, check phase attribution through the thread-local tag stack, the
// folded output format, the report JSON, and the start/stop lifecycle
// guards. Skipped wholesale on platforms without ITIMER_PROF support.
#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

#include "common/json.h"
#include "obs/flame.h"

namespace cosparse::obs {
namespace {

/// Burns CPU until `ms` of wall time has elapsed, returning a data-dependent
/// value so the loop cannot be optimized away. CPU time is what ITIMER_PROF
/// meters, so a busy loop (not a sleep) is required to receive samples.
std::uint64_t burn_cpu_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 4096; ++i) acc = acc * 6364136223846793005ull + 1u;
  }
  return acc;
}

TEST(SampleProfiler, CapturesSamplesAndAttributesPhases) {
  if (!SampleProfiler::platform_supported()) {
    GTEST_SKIP() << "no ITIMER_PROF on this platform";
  }
  SampleProfiler profiler;
  ASSERT_TRUE(profiler.start());
  EXPECT_TRUE(profiler.running());
  EXPECT_TRUE(SampleProfiler::any_active());
  volatile std::uint64_t sink = 0;
  {
    const PhaseScope phase("test.burn");
    sink = burn_cpu_ms(400);
  }
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(SampleProfiler::any_active());
  (void)sink;

  // 400 ms of CPU at the default 1 kHz period: expect at least a handful
  // of samples even on hosts where the kernel delivers ITIMER_PROF at
  // jiffy resolution (~100 Hz).
  EXPECT_GE(profiler.num_samples(), 5u);
  EXPECT_EQ(profiler.dropped_samples(), 0u);
  EXPECT_GE(profiler.num_threads(), 1u);

  // The burn phase dominates: its samples lead the folded stacks.
  const auto totals = profiler.phase_totals();
  ASSERT_FALSE(totals.empty());
  std::uint64_t burn = 0, all = 0;
  for (const auto& [phase, count] : totals) {
    all += count;
    if (phase == "test.burn") burn += count;
  }
  EXPECT_EQ(all, profiler.num_samples());
  EXPECT_GT(burn, all / 2) << profiler.folded();
}

TEST(SampleProfiler, FoldedOutputParsesAndNestsPhasesOutermostFirst) {
  if (!SampleProfiler::platform_supported()) {
    GTEST_SKIP() << "no ITIMER_PROF on this platform";
  }
  SampleProfiler profiler;
  ASSERT_TRUE(profiler.start());
  volatile std::uint64_t sink = 0;
  {
    const PhaseScope outer("test.outer");
    const PhaseScope inner("test.inner");
    sink = burn_cpu_ms(300);
  }
  profiler.stop();
  (void)sink;
  ASSERT_GE(profiler.num_samples(), 3u);

  // The folded text round-trips through the flamegraph parser, and nested
  // scopes appear as "test.outer;test.inner;..." (outermost first).
  const FoldedProfile parsed = FoldedProfile::parse(profiler.folded());
  EXPECT_EQ(parsed.total_samples, profiler.num_samples());
  bool saw_nested = false;
  for (const auto& stack : parsed.stacks) {
    if (stack.frames.size() >= 2 && stack.frames[0] == "test.outer" &&
        stack.frames[1] == "test.inner") {
      saw_nested = true;
    }
  }
  EXPECT_TRUE(saw_nested) << profiler.folded();
  // Leaf-phase attribution: samples under both scopes count toward the
  // innermost phase.
  std::uint64_t inner_count = 0;
  for (const auto& [phase, count] : phase_totals(parsed)) {
    if (phase == "test.inner") inner_count = count;
  }
  EXPECT_GT(inner_count, 0u);
}

TEST(SampleProfiler, ReportJsonCarriesSchemaAndPhaseShares) {
  if (!SampleProfiler::platform_supported()) {
    GTEST_SKIP() << "no ITIMER_PROF on this platform";
  }
  SampleProfiler profiler;
  ASSERT_TRUE(profiler.start());
  volatile std::uint64_t sink = 0;
  {
    const PhaseScope phase("test.report");
    sink = burn_cpu_ms(300);
  }
  profiler.stop();
  (void)sink;
  ASSERT_GE(profiler.num_samples(), 1u);

  const Json report = profiler.report_json();
  ASSERT_TRUE(report.is_object());
  EXPECT_EQ(report.find("schema")->as_string(), kCpuProfileSchema);
  EXPECT_EQ(report.find("period_us")->as_int(), 1000);
  EXPECT_EQ(static_cast<std::uint64_t>(report.find("samples")->as_int()),
            profiler.num_samples());
  const Json* phases = report.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_object());
  double share_sum = 0.0;
  for (const auto& [name, entry] : phases->members()) {
    (void)name;
    share_sum += entry.find("share")->as_double();
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(SampleProfiler, SecondStartWhileActiveFails) {
  if (!SampleProfiler::platform_supported()) {
    GTEST_SKIP() << "no ITIMER_PROF on this platform";
  }
  SampleProfiler first;
  ASSERT_TRUE(first.start());
  SampleProfiler second;
  // The SIGPROF timer is process-wide: a second concurrent profiler must
  // refuse to start instead of corrupting the first one's sample stream.
  EXPECT_FALSE(second.start());
  first.stop();
  // ...and once the first stops, a fresh session can start again.
  EXPECT_TRUE(second.start());
  second.stop();
}

TEST(SampleProfiler, InternedPhaseTagsAreStableAcrossCalls) {
  const char* a = intern_phase_tag("test.interned_tag");
  const char* b = intern_phase_tag(std::string("test.interned_") + "tag");
  // Same pointer for the same string: the handler can capture the pointer
  // without the owner's lifetime mattering.
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::string(a), "test.interned_tag");
}

TEST(SampleProfiler, PhaseScopesAreHarmlessWithoutAnActiveProfiler) {
  // Scopes must be safe to enter/leave (and nest beyond the capture depth)
  // when nothing is sampling — the instrumented library code always runs
  // them, profiled or not.
  for (int i = 0; i < 3; ++i) {
    const PhaseScope p1("test.idle");
    const PhaseScope p2("test.idle");
    const PhaseScope p3("test.idle");
    const PhaseScope p4("test.idle");
    const PhaseScope p5("test.idle");
    const PhaseScope p6("test.idle");
    const PhaseScope p7("test.idle");
    const PhaseScope p8("test.idle");
    const PhaseScope p9("test.idle");  // deeper than kMaxPhaseDepth
    const PhaseScope p10("test.idle");
  }
  SUCCEED();
}

TEST(SampleProfiler, WorkerThreadSamplesAreHarvested) {
  if (!SampleProfiler::platform_supported()) {
    GTEST_SKIP() << "no ITIMER_PROF on this platform";
  }
  SampleProfiler profiler;
  ASSERT_TRUE(profiler.start());
  volatile std::uint64_t sink = 0;
  std::thread worker([&sink] {
    const PhaseScope phase("test.worker");
    sink = burn_cpu_ms(400);
  });
  worker.join();
  profiler.stop();
  (void)sink;
  // ITIMER_PROF signals are delivered to *some* running thread; with the
  // main thread idle (join) the worker receives nearly all of them.
  std::uint64_t worker_count = 0;
  for (const auto& [phase, count] : profiler.phase_totals()) {
    if (phase == "test.worker") worker_count = count;
  }
  EXPECT_GT(worker_count, 0u) << profiler.folded();
  EXPECT_GE(profiler.num_threads(), 1u);
}

}  // namespace
}  // namespace cosparse::obs
