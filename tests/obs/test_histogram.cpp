// StreamingHistogram unit tests: bucket geometry, the one-bucket quantile
// error bound, exact/associative merges, and the JSON round-trip the
// telemetry snapshots rely on.
#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace cosparse::obs {
namespace {

TEST(StreamingHistogram, BucketBoundariesCoverEveryOctaveUniformly) {
  // Within one octave [2^e, 2^(e+1)) the kSubBuckets sub-buckets split the
  // range linearly; the index must be monotone and the upper edge of
  // bucket i must be the first value mapping to bucket i+1.
  for (const int exp : {-3, 0, 5, 20}) {
    const double lo = std::ldexp(1.0, exp);
    const int base = StreamingHistogram::bucket_index(lo);
    for (int sub = 0; sub < StreamingHistogram::kSubBuckets; ++sub) {
      const double width = lo / StreamingHistogram::kSubBuckets;
      const double inside = lo + (sub + 0.5) * width;
      EXPECT_EQ(StreamingHistogram::bucket_index(inside), base + sub)
          << "exp=" << exp << " sub=" << sub;
      // The upper edge is exclusive: it belongs to the next bucket.
      const double upper = StreamingHistogram::bucket_upper(base + sub);
      EXPECT_EQ(StreamingHistogram::bucket_index(upper), base + sub + 1);
    }
  }
}

TEST(StreamingHistogram, BucketIndexIsMonotone) {
  int prev = -1;
  for (double v = 1e-6; v < 1e8; v *= 1.037) {
    const int idx = StreamingHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = idx;
  }
}

TEST(StreamingHistogram, OutOfRangeValuesClampInsteadOfCrashing) {
  StreamingHistogram h;
  h.observe(1e-300);  // below 2^-30: clamps into the first bucket
  h.observe(1e300);   // above 2^34: overflow bucket
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 3u);
  // Quantiles stay finite: they clamp to the observed max.
  EXPECT_TRUE(std::isinf(h.max()));
  EXPECT_GT(h.quantile(0.5), 0.0);
}

TEST(StreamingHistogram, NonPositiveValuesLandInTheZeroBucket) {
  StreamingHistogram h;
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(std::nan(""));
  h.observe(8.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.zero_count(), 3u);
  // Ranks 1..3 are zero samples; only the last quantile sees 8.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(StreamingHistogram, QuantileErrorIsWithinOneBucket) {
  // The documented bound: the reported quantile is the upper edge of the
  // bucket holding the true rank sample, so |reported - true| <=
  // one bucket width <= true / kSubBuckets.
  Rng rng(99);
  std::vector<double> samples;
  StreamingHistogram h;
  for (int i = 0; i < 5000; ++i) {
    const double v = 0.001 + 1000.0 * rng.next_double() * rng.next_double();
    samples.push_back(v);
    h.observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double truth = samples[rank - 1];
    const double got = h.quantile(q);
    EXPECT_GE(got, truth) << "q=" << q;  // upper edge never undershoots
    EXPECT_LE(got - truth,
              truth / StreamingHistogram::kSubBuckets + 1e-12)
        << "q=" << q;
  }
}

TEST(StreamingHistogram, MergeIsExactAndAssociative) {
  Rng rng(7);
  // Three shards plus the all-in-one reference.
  StreamingHistogram a, b, c, all;
  for (int i = 0; i < 900; ++i) {
    const double v = rng.next_double() * 50.0;
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).observe(v);
    all.observe(v);
  }
  // (a + b) + c and a + (b + c) give identical state to the reference.
  StreamingHistogram left = a;
  left.merge(b);
  left.merge(c);
  StreamingHistogram bc = b;
  bc.merge(c);
  StreamingHistogram right = a;
  right.merge(bc);
  for (const StreamingHistogram* m : {&left, &right}) {
    EXPECT_EQ(m->count(), all.count());
    EXPECT_EQ(m->zero_count(), all.zero_count());
    EXPECT_EQ(m->buckets(), all.buckets());
    EXPECT_DOUBLE_EQ(m->min(), all.min());
    EXPECT_DOUBLE_EQ(m->max(), all.max());
    for (const double q : {0.5, 0.9, 0.99})
      EXPECT_DOUBLE_EQ(m->quantile(q), all.quantile(q));
  }
}

TEST(StreamingHistogram, MergingAnEmptyHistogramIsIdentity) {
  StreamingHistogram h, empty;
  h.observe(3.0);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  StreamingHistogram other = empty;
  other.merge(h);
  EXPECT_EQ(other.count(), 1u);
  EXPECT_DOUBLE_EQ(other.max(), 3.0);
}

TEST(StreamingHistogram, SingleSampleQuantilesAllReportThatSample) {
  // With one observation every rank resolves to the same bucket, so every
  // quantile reports a value within one bucket width of the sample (and
  // never below it — the reported value is the bucket's upper edge).
  for (const double v : {0.001, 1.0, 3.5, 1e6}) {
    StreamingHistogram h;
    h.observe(v);
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      const double got = h.quantile(q);
      EXPECT_GE(got, v) << "v=" << v << " q=" << q;
      EXPECT_LE(got - v, v / StreamingHistogram::kSubBuckets + 1e-12)
          << "v=" << v << " q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.min(), v);
    EXPECT_DOUBLE_EQ(h.max(), v);
  }
}

TEST(StreamingHistogram, AllEqualValuesCollapseToOneBucket) {
  StreamingHistogram h;
  for (int i = 0; i < 1000; ++i) h.observe(7.25);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 7.25);
  EXPECT_DOUBLE_EQ(h.max(), 7.25);
  // Every quantile lands in the single occupied bucket: p50 == p999.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), h.quantile(0.999));
  EXPECT_GE(h.quantile(0.5), 7.25);
  EXPECT_LE(h.quantile(0.5) - 7.25,
            7.25 / StreamingHistogram::kSubBuckets + 1e-12);
}

TEST(StreamingHistogram, MergeWithEmptyPreservesEveryStatistic) {
  Rng rng(31);
  StreamingHistogram h;
  for (int i = 0; i < 200; ++i) h.observe(rng.next_double() * 9.0);
  const StreamingHistogram before = h;
  StreamingHistogram empty;
  h.merge(empty);           // h + 0 == h
  StreamingHistogram onto = empty;
  onto.merge(before);       // 0 + h == h
  for (const StreamingHistogram* m : {&h, &onto}) {
    EXPECT_EQ(m->count(), before.count());
    EXPECT_EQ(m->zero_count(), before.zero_count());
    EXPECT_EQ(m->buckets(), before.buckets());
    EXPECT_DOUBLE_EQ(m->sum(), before.sum());
    EXPECT_DOUBLE_EQ(m->min(), before.min());
    EXPECT_DOUBLE_EQ(m->max(), before.max());
    for (const double q : {0.5, 0.9, 0.99, 0.999})
      EXPECT_DOUBLE_EQ(m->quantile(q), before.quantile(q));
  }
}

TEST(StreamingHistogram, MergeIsCommutativeOnRandomShards) {
  // Property: a.merge(b) and b.merge(a) reach identical state for random
  // shard contents — including shards with zeros, negatives (zero bucket)
  // and out-of-range magnitudes.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(1000 + seed);
    StreamingHistogram a, b;
    const int na = static_cast<int>(rng.next_below(400));
    const int nb = static_cast<int>(rng.next_below(400));
    for (int i = 0; i < na; ++i) {
      a.observe((rng.next_double() - 0.1) * std::ldexp(1.0, static_cast<int>(
                    rng.next_below(40)) - 10));
    }
    for (int i = 0; i < nb; ++i) b.observe(rng.next_double() * 1e5);
    StreamingHistogram ab = a;
    ab.merge(b);
    StreamingHistogram ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.count(), ba.count()) << "seed=" << seed;
    EXPECT_EQ(ab.zero_count(), ba.zero_count()) << "seed=" << seed;
    EXPECT_EQ(ab.buckets(), ba.buckets()) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(ab.sum(), ba.sum()) << "seed=" << seed;
    if (ab.count() > 0) {
      EXPECT_DOUBLE_EQ(ab.min(), ba.min()) << "seed=" << seed;
      EXPECT_DOUBLE_EQ(ab.max(), ba.max()) << "seed=" << seed;
      for (const double q : {0.5, 0.9, 0.999})
        EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q)) << "seed=" << seed;
    }
  }
}

TEST(HistogramSummary, JsonRoundTripIsLossless) {
  StreamingHistogram h;
  for (const double v : {0.25, 1.5, 1.5, 40.0, 1e4}) h.observe(v);
  const HistogramSummary s = h.summary();
  const HistogramSummary back = HistogramSummary::from_json(s.to_json());
  EXPECT_EQ(back.count, s.count);
  EXPECT_DOUBLE_EQ(back.sum, s.sum);
  EXPECT_DOUBLE_EQ(back.min, s.min);
  EXPECT_DOUBLE_EQ(back.max, s.max);
  EXPECT_DOUBLE_EQ(back.p50, s.p50);
  EXPECT_DOUBLE_EQ(back.p90, s.p90);
  EXPECT_DOUBLE_EQ(back.p99, s.p99);
  EXPECT_DOUBLE_EQ(back.p999, s.p999);
  EXPECT_DOUBLE_EQ(s.mean(), s.sum / static_cast<double>(s.count));
}

}  // namespace
}  // namespace cosparse::obs
