// Validation helper for cosparse.run_report/v1 documents.
//
// Shared by the unit tests and the check_report CLI (the CTest smoke test
// pipes a real quickstart report through it). Returns "" when the document
// conforms, otherwise a human-readable description of the first violation.
#pragma once

#include <cmath>
#include <string>

#include "common/json.h"
#include "obs/report.h"

namespace cosparse::obs::testing {

inline std::string check_report(const Json& doc) {
  if (!doc.is_object()) return "report is not a JSON object";

  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return "missing string field: schema";
  }
  if (schema->as_string() != kReportSchema) {
    return "unexpected schema: " + schema->as_string();
  }
  const Json* tool = doc.find("tool");
  if (tool == nullptr || !tool->is_string() || tool->as_string().empty()) {
    return "missing/empty string field: tool";
  }

  // Optional sections, validated when present.
  if (const Json* stats = doc.find("stats"); stats != nullptr) {
    if (!stats->is_object()) return "stats is not an object";
    const Json* tiles = doc.find("tile_stats");
    if (tiles != nullptr) {
      if (!tiles->is_array()) return "tile_stats is not an array";
      // The element-wise sum over tiles must reproduce the global stats:
      // exactly for integer counters, to rounding for cycle doubles.
      for (const auto& [name, global] : stats->members()) {
        if (global.type() == Json::Type::kInt) {
          std::int64_t sum = 0;
          for (const Json& tile : tiles->items()) {
            const Json* v = tile.find(name);
            if (v == nullptr) return "tile_stats missing counter: " + name;
            sum += v->as_int();
          }
          if (sum != global.as_int()) {
            return "tile_stats do not sum to stats for counter: " + name;
          }
        } else {
          double sum = 0.0;
          for (const Json& tile : tiles->items()) {
            const Json* v = tile.find(name);
            if (v == nullptr) return "tile_stats missing counter: " + name;
            sum += v->as_double();
          }
          const double g = global.as_double();
          const double tol = 1e-6 * std::max(1.0, std::abs(g));
          if (std::abs(sum - g) > tol) {
            return "tile_stats do not sum to stats for counter: " + name;
          }
        }
      }
    }
  }

  if (const Json* iters = doc.find("iterations"); iters != nullptr) {
    if (!iters->is_array()) return "iterations is not an array";
    for (const Json& it : iters->items()) {
      for (const char* key :
           {"index", "frontier_nnz", "density", "sw", "hw", "cycles"}) {
        if (it.find(key) == nullptr) {
          return std::string("iteration record missing field: ") + key;
        }
      }
      const std::string& sw = it.find("sw")->as_string();
      if (sw != "IP" && sw != "OP") return "bad iteration sw: " + sw;
    }
  }

  if (const Json* totals = doc.find("totals"); totals != nullptr) {
    if (!totals->is_object()) return "totals is not an object";
    const Json* cycles = totals->find("cycles");
    if (cycles == nullptr || !cycles->is_number()) {
      return "totals missing number field: cycles";
    }
  }

  return "";
}

}  // namespace cosparse::obs::testing
