// Validation helper for cosparse.run_report/v1 documents.
//
// Shared by the unit tests and the check_report CLI (the CTest smoke test
// pipes a real quickstart report through it). The checks themselves live
// in the verify subsystem (src/verify/schema_lint.h) so check_report, the
// unit tests and `cosparse-lint report` all enforce the same contract;
// this wrapper keeps the historical first-violation string interface.
// Returns "" when the document conforms, otherwise a human-readable
// description of the first violation.
#pragma once

#include <string>

#include "common/json.h"
#include "verify/schema_lint.h"

namespace cosparse::obs::testing {

inline std::string check_report(const Json& doc) {
  for (const auto& f : cosparse::verify::lint_run_report(doc)) {
    if (f.severity == cosparse::verify::Severity::kError) return f.message;
  }
  return "";
}

}  // namespace cosparse::obs::testing
