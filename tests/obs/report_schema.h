// Validation helper for cosparse.run_report/v1 documents.
//
// Shared by the unit tests and the check_report CLI (the CTest smoke test
// pipes a real quickstart report through it). Returns "" when the document
// conforms, otherwise a human-readable description of the first violation.
#pragma once

#include <cmath>
#include <string>

#include "common/json.h"
#include "obs/report.h"

namespace cosparse::obs::testing {

inline std::string check_report(const Json& doc) {
  if (!doc.is_object()) return "report is not a JSON object";

  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return "missing string field: schema";
  }
  if (schema->as_string() != kReportSchema) {
    return "unexpected schema: " + schema->as_string();
  }
  const Json* tool = doc.find("tool");
  if (tool == nullptr || !tool->is_string() || tool->as_string().empty()) {
    return "missing/empty string field: tool";
  }

  // Optional sections, validated when present.
  if (const Json* stats = doc.find("stats"); stats != nullptr) {
    if (!stats->is_object()) return "stats is not an object";
    const Json* tiles = doc.find("tile_stats");
    if (tiles != nullptr) {
      if (!tiles->is_array()) return "tile_stats is not an array";
      // The element-wise sum over tiles must reproduce the global stats:
      // exactly for integer counters, to rounding for cycle doubles.
      for (const auto& [name, global] : stats->members()) {
        if (global.type() == Json::Type::kInt) {
          std::int64_t sum = 0;
          for (const Json& tile : tiles->items()) {
            const Json* v = tile.find(name);
            if (v == nullptr) return "tile_stats missing counter: " + name;
            sum += v->as_int();
          }
          if (sum != global.as_int()) {
            return "tile_stats do not sum to stats for counter: " + name;
          }
        } else {
          double sum = 0.0;
          for (const Json& tile : tiles->items()) {
            const Json* v = tile.find(name);
            if (v == nullptr) return "tile_stats missing counter: " + name;
            sum += v->as_double();
          }
          const double g = global.as_double();
          const double tol = 1e-6 * std::max(1.0, std::abs(g));
          if (std::abs(sum - g) > tol) {
            return "tile_stats do not sum to stats for counter: " + name;
          }
        }
      }
    }
  }

  if (const Json* iters = doc.find("iterations"); iters != nullptr) {
    if (!iters->is_array()) return "iterations is not an array";
    for (const Json& it : iters->items()) {
      for (const char* key :
           {"index", "frontier_nnz", "density", "sw", "hw", "cycles"}) {
        if (it.find(key) == nullptr) {
          return std::string("iteration record missing field: ") + key;
        }
      }
      const std::string& sw = it.find("sw")->as_string();
      if (sw != "IP" && sw != "OP") return "bad iteration sw: " + sw;
    }
  }

  if (const Json* totals = doc.find("totals"); totals != nullptr) {
    if (!totals->is_object()) return "totals is not an object";
    const Json* cycles = totals->find("cycles");
    if (cycles == nullptr || !cycles->is_number()) {
      return "totals missing number field: cycles";
    }
  }

  if (const Json* prof = doc.find("memory_profile"); prof != nullptr) {
    if (!prof->is_object()) return "memory_profile is not an object";
    const Json* ptotals = prof->find("totals");
    const Json* regions = prof->find("regions");
    if (ptotals == nullptr || !ptotals->is_object()) {
      return "memory_profile missing object field: totals";
    }
    if (regions == nullptr || !regions->is_object()) {
      return "memory_profile missing object field: regions";
    }
    for (const auto& [name, total] : ptotals->members()) {
      // Region sums reproduce the profile totals (exactly for integer
      // counters, to rounding for the stall-cycle doubles).
      if (total.type() == Json::Type::kInt) {
        std::int64_t sum = 0;
        for (const auto& [label, region] : regions->members()) {
          const Json* counters = region.find("counters");
          if (counters == nullptr) {
            return "memory_profile region missing counters: " + label;
          }
          const Json* v = counters->find(name);
          if (v == nullptr) {
            return "memory_profile region missing counter: " + name;
          }
          sum += v->as_int();
        }
        if (sum != total.as_int()) {
          return "memory_profile regions do not sum to totals for counter: " +
                 name;
        }
      }
      // Profile totals reproduce the global stats bit-exactly for every
      // counter name the two sections share (the MemProfiler invariant).
      if (const Json* stats = doc.find("stats"); stats != nullptr) {
        const Json* g = stats->find(name);
        if (g != nullptr && total.type() == Json::Type::kInt &&
            g->type() == Json::Type::kInt &&
            total.as_int() != g->as_int()) {
          return "memory_profile total diverges from stats counter: " + name;
        }
      }
    }
  }

  if (const Json* audit = doc.find("decision_audit"); audit != nullptr) {
    if (!audit->is_object()) return "decision_audit is not an object";
    const Json* invs = audit->find("invocations");
    if (invs == nullptr || !invs->is_array()) {
      return "decision_audit missing array field: invocations";
    }
    std::uint32_t expected = 0;
    for (const Json& rec : invs->items()) {
      for (const char* key :
           {"invocation", "forced_sw", "features", "checks", "sw", "hw",
            "cvd", "counterfactuals"}) {
        if (rec.find(key) == nullptr) {
          return std::string("decision record missing field: ") + key;
        }
      }
      if (static_cast<std::uint32_t>(rec.find("invocation")->as_int()) !=
          expected++) {
        return "decision records are not sequentially numbered";
      }
      const Json* cfs = rec.find("counterfactuals");
      if (!cfs->is_array() || cfs->size() != 4) {
        return "decision record must carry 4 counterfactuals";
      }
      std::size_t chosen = 0;
      for (const Json& cf : cfs->items()) {
        const Json* flag = cf.find("chosen");
        if (flag == nullptr) return "counterfactual missing field: chosen";
        if (flag->as_bool()) ++chosen;
      }
      if (chosen != 1) {
        return "decision record must mark exactly one chosen counterfactual";
      }
    }
  }

  return "";
}

}  // namespace cosparse::obs::testing
