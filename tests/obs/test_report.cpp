#include "runtime/report.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/algorithms.h"
#include "kernels/semiring.h"
#include "obs/metrics.h"
#include "sparse/generate.h"
#include "report_schema.h"

namespace cosparse::runtime {
namespace {

TEST(Report, IterationRecordRoundTripsThroughJson) {
  IterationRecord rec;
  rec.index = 7;
  rec.frontier_nnz = 1234;
  rec.density = 0.617;
  rec.sw = SwConfig::kOP;
  rec.hw = sim::HwConfig::kPS;
  rec.sw_switched = true;
  rec.hw_switched = true;
  rec.converted_frontier = true;
  rec.cycles = 987654;
  rec.convert_cycles = 4321;
  rec.energy_pj = 1.5e9;

  const IterationRecord back = iteration_record_from_json(to_json(rec));
  EXPECT_EQ(back.index, rec.index);
  EXPECT_EQ(back.frontier_nnz, rec.frontier_nnz);
  EXPECT_DOUBLE_EQ(back.density, rec.density);
  EXPECT_EQ(back.sw, rec.sw);
  EXPECT_EQ(back.hw, rec.hw);
  EXPECT_EQ(back.sw_switched, rec.sw_switched);
  EXPECT_EQ(back.hw_switched, rec.hw_switched);
  EXPECT_EQ(back.converted_frontier, rec.converted_frontier);
  EXPECT_EQ(back.cycles, rec.cycles);
  EXPECT_EQ(back.convert_cycles, rec.convert_cycles);
  EXPECT_DOUBLE_EQ(back.energy_pj, rec.energy_pj);
}

TEST(Report, IterationRecordFromJsonRejectsBadInput) {
  EXPECT_THROW((void)iteration_record_from_json(Json::parse("[]")), Error);
  // Missing required field.
  const Json full = to_json(IterationRecord{});
  Json without_cycles = Json::object();
  for (const auto& [key, value] : full.members()) {
    if (key != "cycles") without_cycles[key] = value;
  }
  EXPECT_THROW((void)iteration_record_from_json(without_cycles), Error);
  // Unknown dataflow name.
  Json bad = to_json(IterationRecord{});
  bad["sw"] = "XX";
  EXPECT_THROW((void)iteration_record_from_json(bad), Error);
}

TEST(Report, SwConfigFromStringParsesBothAndRejectsOthers) {
  EXPECT_EQ(sw_config_from_string("IP"), SwConfig::kIP);
  EXPECT_EQ(sw_config_from_string("OP"), SwConfig::kOP);
  EXPECT_THROW((void)sw_config_from_string("ip"), Error);
}

TEST(Report, MakeRunReportPassesSchemaCheck) {
  const auto a = sparse::uniform_random(2500, 2500, 35000, 17,
                                        sparse::ValueDist::kUniform01);
  obs::MetricsRegistry metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  Engine eng(a, sim::SystemConfig::transmuter(4, 8), opts);
  const auto res = graph::bfs(eng, 0);
  ASSERT_GT(res.stats.iterations, 0u);

  const obs::Report report = make_run_report(eng, "test_report");
  // Round-trip through text so the validator sees what a consumer would.
  const Json doc = Json::parse(report.to_string());
  EXPECT_EQ(cosparse::obs::testing::check_report(doc), "");

  EXPECT_EQ(doc.find("schema")->as_string(), obs::kReportSchema);
  EXPECT_EQ(doc.find("tool")->as_string(), "test_report");
  EXPECT_EQ(doc.find("iterations")->size(), eng.iterations().size());
  const Json* tiles = doc.find("tile_stats");
  ASSERT_NE(tiles, nullptr);
  EXPECT_EQ(tiles->size(), static_cast<std::size_t>(eng.system().num_tiles));
  // Metrics section is present because a registry was attached.
  const Json* metrics_section = doc.find("metrics");
  ASSERT_NE(metrics_section, nullptr);
  EXPECT_NE(metrics_section->find("counters"), nullptr);
  // Totals mirror the engine.
  EXPECT_EQ(doc.find("totals")->find("cycles")->as_int(),
            static_cast<std::int64_t>(eng.total_cycles()));
}

TEST(Report, SchemaCheckerFlagsTamperedTileStats) {
  const auto a = sparse::uniform_random(1000, 1000, 12000, 5,
                                        sparse::ValueDist::kUniform01);
  Engine eng(a, sim::SystemConfig::transmuter(2, 4));
  eng.spmv(Engine::Frontier::from_sparse(
               sparse::random_sparse_vector(1000, 0.2, 9)),
           kernels::PlainSpmv{});

  const obs::Report report = make_run_report(eng, "test_report");
  const Json doc = Json::parse(report.to_string());
  EXPECT_EQ(cosparse::obs::testing::check_report(doc), "");

  // Corrupt one per-tile counter (Json is read-only once built, so rebuild
  // the document around the tampered tile): the sum invariant must catch it.
  Json tampered = Json::object();
  for (const auto& [key, value] : doc.members()) {
    if (key != "tile_stats") {
      tampered[key] = value;
      continue;
    }
    Json tiles = Json::array();
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (i != 0) {
        tiles.push_back(value.at(i));
        continue;
      }
      Json tile = Json::object();
      for (const auto& [name, counter] : value.at(i).members()) {
        tile[name] = counter;
      }
      tile["dram_read_bytes"] =
          value.at(i).find("dram_read_bytes")->as_int() + 1;
      tiles.push_back(std::move(tile));
    }
    tampered[key] = std::move(tiles);
  }
  EXPECT_NE(cosparse::obs::testing::check_report(tampered), "");
}

}  // namespace
}  // namespace cosparse::runtime
