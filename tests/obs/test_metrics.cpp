#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace cosparse::obs {
namespace {

TEST(Metrics, CounterIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("engine.iterations");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Lookup-or-create returns the same instance.
  EXPECT_EQ(&reg.counter("engine.iterations"), &c);
  EXPECT_EQ(reg.counter("engine.iterations").value(), 5u);
}

TEST(Metrics, HandlesStayStableAcrossInsertions) {
  MetricsRegistry reg;
  Counter& first = reg.counter("a");
  // Force rebalancing of the underlying container with many inserts.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  first.inc();
  EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(Metrics, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  reg.gauge("load").set(0.5);
  reg.gauge("load").set(0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("load").value(), 0.25);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1.0 -> bucket 0
  h.observe(1.0);   // inclusive -> bucket 0
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // overflow bucket
}

TEST(Metrics, HistogramBoundsApplyOnFirstCreationOnly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("d", {0.5});
  EXPECT_EQ(&reg.histogram("d", {0.1, 0.2, 0.3}), &h);
  EXPECT_EQ(h.bounds().size(), 1u);
}

TEST(Metrics, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  reg.counter("yes").inc();
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
}

TEST(Metrics, ToJsonOmitsEmptySectionsAndKeepsExactCounts) {
  MetricsRegistry reg;
  reg.counter("runs").inc(3);
  const Json j = reg.to_json();
  ASSERT_NE(j.find("counters"), nullptr);
  EXPECT_EQ(j.find("counters")->find("runs")->as_int(), 3);
  EXPECT_EQ(j.find("gauges"), nullptr);
  EXPECT_EQ(j.find("histograms"), nullptr);
}

TEST(Metrics, HistogramToJsonStructure) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("density", {0.1, 0.5});
  h.observe(0.05);
  h.observe(0.3);
  h.observe(0.9);
  const Json j = reg.to_json();
  const Json* hist = j.find("histograms")->find("density");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_int(), 3);
  EXPECT_EQ(hist->find("bounds")->size(), 2u);
  EXPECT_EQ(hist->find("bucket_counts")->size(), 3u);
}

}  // namespace
}  // namespace cosparse::obs
