// Folded-profile tests: parsing (including error lines), phase-frame
// detection, leaf-phase aggregation, the phases JSON / HTML renderings,
// and both directions of the differential flame gate.
#include "obs/flame.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.h"

namespace cosparse::obs {
namespace {

const char* kFolded =
    "engine.spmv;kernel.ip;cosparse::kernels::run_inner_product 40\n"
    "engine.spmv;kernel.op;cosparse::kernels::run_outer_product 10\n"
    "engine.spmv;kernel.ip 5\n"
    "(untagged);main 45\n";

TEST(FoldedProfile, ParsesStacksAndTotals) {
  const FoldedProfile p = FoldedProfile::parse(kFolded);
  ASSERT_EQ(p.stacks.size(), 4u);
  EXPECT_EQ(p.total_samples, 100u);
  EXPECT_EQ(p.stacks[0].frames.size(), 3u);
  EXPECT_EQ(p.stacks[0].frames[0], "engine.spmv");
  EXPECT_EQ(p.stacks[0].frames[2], "cosparse::kernels::run_inner_product");
  EXPECT_EQ(p.stacks[0].count, 40u);
}

TEST(FoldedProfile, SkipsBlankLinesAndRejectsMalformedOnes) {
  const FoldedProfile p = FoldedProfile::parse("\n\na;b 3\n\n");
  EXPECT_EQ(p.total_samples, 3u);
  EXPECT_THROW((void)FoldedProfile::parse("no_trailing_count\n"), Error);
  EXPECT_THROW((void)FoldedProfile::parse("frame notanumber\n"), Error);
  EXPECT_THROW((void)FoldedProfile::parse("frame -4\n"), Error);
}

TEST(FoldedProfile, EmptyTextParsesToEmptyProfile) {
  const FoldedProfile p = FoldedProfile::parse("");
  EXPECT_TRUE(p.stacks.empty());
  EXPECT_EQ(p.total_samples, 0u);
  // Downstream consumers tolerate the empty profile.
  EXPECT_TRUE(phase_totals(p).empty());
  const std::string html = render_flamegraph_html(p, "empty");
  EXPECT_NE(html.find("<svg"), std::string::npos);
}

TEST(FoldedProfile, PhaseFrameDetection) {
  EXPECT_TRUE(is_phase_frame("engine.spmv"));
  EXPECT_TRUE(is_phase_frame("sim.log_fill"));
  EXPECT_TRUE(is_phase_frame("graph.bfs"));
  EXPECT_TRUE(is_phase_frame("(untagged)"));
  EXPECT_FALSE(is_phase_frame("main"));                // no dot
  EXPECT_FALSE(is_phase_frame("cosparse::sim::run"));  // symbol
  EXPECT_FALSE(is_phase_frame("Engine.Spmv"));         // uppercase
  EXPECT_FALSE(is_phase_frame("[libc.so.6]"));         // binary marker
  EXPECT_FALSE(is_phase_frame(""));
}

TEST(FoldedProfile, PhaseTotalsUseTheLeafPhaseOfEachStack) {
  const auto totals = phase_totals(FoldedProfile::parse(kFolded));
  // Leaf semantics: kernel.ip gets both its stacks (40 + 5); engine.spmv
  // gets nothing (it is never the deepest phase frame); the symbol-only
  // stack lands in "(untagged)".
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0].first, "(untagged)");
  EXPECT_EQ(totals[0].second, 45u);
  EXPECT_EQ(totals[1].first, "kernel.ip");
  EXPECT_EQ(totals[1].second, 45u);
  EXPECT_EQ(totals[2].first, "kernel.op");
  EXPECT_EQ(totals[2].second, 10u);
}

TEST(FoldedProfile, PhasesJsonCarriesSamplesAndShares) {
  const Json phases = phases_json(FoldedProfile::parse(kFolded));
  ASSERT_TRUE(phases.is_object());
  const Json* ip = phases.find("kernel.ip");
  ASSERT_NE(ip, nullptr);
  EXPECT_EQ(ip->find("samples")->as_int(), 45);
  EXPECT_DOUBLE_EQ(ip->find("share")->as_double(), 0.45);
}

TEST(FoldedProfile, PhaseTableListsEveryPhase) {
  std::ostringstream os;
  print_phase_table(os, FoldedProfile::parse(kFolded));
  const std::string out = os.str();
  EXPECT_NE(out.find("kernel.ip"), std::string::npos);
  EXPECT_NE(out.find("kernel.op"), std::string::npos);
  EXPECT_NE(out.find("(untagged)"), std::string::npos);
}

TEST(FoldedProfile, FlamegraphHtmlIsSelfContained) {
  const std::string html =
      render_flamegraph_html(FoldedProfile::parse(kFolded), "unit profile");
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("unit profile"), std::string::npos);
  // Frames appear as rects with <title> tooltips carrying counts.
  EXPECT_NE(html.find("kernel.ip"), std::string::npos);
  EXPECT_NE(html.find("<title>"), std::string::npos);
  // Self-contained: no external scripts, stylesheets or images (the SVG
  // xmlns URI is a namespace identifier, not a fetch).
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("<img"), std::string::npos);
}

TEST(FoldedProfile, FlamegraphEscapesMarkupInFrames) {
  const std::string html = render_flamegraph_html(
      FoldedProfile::parse("a.phase;std::vector<int>::push_back 3\n"),
      "esc <b>");
  EXPECT_EQ(html.find("<int>"), std::string::npos);
  EXPECT_NE(html.find("&lt;int&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<b>"), std::string::npos);
}

TEST(FlameDiff, SelfDiffNeverRegresses) {
  const FoldedProfile p = FoldedProfile::parse(kFolded);
  const FlameDiffResult r = diff_folded(p, p, 0.0);
  EXPECT_FALSE(r.regressed);
  for (const auto& row : r.rows) {
    EXPECT_DOUBLE_EQ(row.delta, 0.0);
    EXPECT_FALSE(row.regressed);
  }
}

TEST(FlameDiff, GatesOnShareGrowthBeyondTheLimit) {
  const FoldedProfile a = FoldedProfile::parse("x.one 50\nx.two 50\n");
  const FoldedProfile b = FoldedProfile::parse("x.one 30\nx.two 70\n");
  // x.two grew by 20 share points: regresses under a 5% limit...
  const FlameDiffResult tight = diff_folded(a, b, 0.05);
  EXPECT_TRUE(tight.regressed);
  ASSERT_EQ(tight.rows.size(), 2u);
  // Rows come sorted by |delta| (ties by name): both phases moved by the
  // same 20 points, so x.one leads and only the grower is flagged.
  EXPECT_EQ(tight.rows[0].phase, "x.one");
  bool saw_grower = false;
  for (const auto& row : tight.rows) {
    if (row.phase == "x.two") {
      saw_grower = true;
      EXPECT_NEAR(row.delta, 0.20, 1e-12);
      EXPECT_TRUE(row.regressed);
    }
  }
  EXPECT_TRUE(saw_grower);
  // ...but not under a 25% limit.
  EXPECT_FALSE(diff_folded(a, b, 0.25).regressed);
  // The shrinking phase itself is never flagged (only growth regresses).
  for (const auto& row : tight.rows) {
    if (row.phase == "x.one") {
      EXPECT_NEAR(row.delta, -0.20, 1e-12);
      EXPECT_FALSE(row.regressed);
    }
  }
}

TEST(FlameDiff, PhasesMissingFromOneSideCountAsZeroShare) {
  const FoldedProfile a = FoldedProfile::parse("x.old 100\n");
  const FoldedProfile b = FoldedProfile::parse("x.new 100\n");
  const FlameDiffResult r = diff_folded(a, b, 0.5);
  EXPECT_TRUE(r.regressed);  // x.new appeared at share 1.0 (> 0.5 growth)
  bool saw_old = false, saw_new = false;
  for (const auto& row : r.rows) {
    if (row.phase == "x.old") {
      saw_old = true;
      EXPECT_DOUBLE_EQ(row.share_b, 0.0);
      EXPECT_FALSE(row.regressed);  // disappearing is an improvement
    }
    if (row.phase == "x.new") {
      saw_new = true;
      EXPECT_DOUBLE_EQ(row.share_a, 0.0);
      EXPECT_TRUE(row.regressed);
    }
  }
  EXPECT_TRUE(saw_old && saw_new);
}

TEST(FlameDiff, PrintedDiffShowsVerdictPerRow) {
  const FoldedProfile a = FoldedProfile::parse("x.one 50\nx.two 50\n");
  const FoldedProfile b = FoldedProfile::parse("x.one 30\nx.two 70\n");
  std::ostringstream os;
  print_flame_diff(os, diff_folded(a, b, 0.05), 0.05);
  const std::string out = os.str();
  EXPECT_NE(out.find("x.two"), std::string::npos);
  EXPECT_NE(out.find("REGRESSED"), std::string::npos);
}

}  // namespace
}  // namespace cosparse::obs
