#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "graph/algorithms.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sparse/generate.h"

namespace cosparse::obs {
namespace {

TEST(Trace, DefaultConstructedIsNullSink) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.add_span("x", "span", 0, 10);
  t.add_instant("x", "i", 5);
  t.add_counter("x", "c", 5, 1.0);
  EXPECT_EQ(t.num_events(), 0u);
}

TEST(Trace, ExportsChromeTraceEventJson) {
  Trace t(true);
  t.add_span("engine", "first", 0, 100);
  t.add_span("engine", "second", 100, 250);
  t.add_instant("engine", "tick", 50);
  t.add_counter("engine", "density", 0, 0.5);

  const Json doc = Json::parse(t.to_json().dump());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Metadata first: process_name + one thread_name per track.
  const Json& meta = events->at(0);
  EXPECT_EQ(meta.find("ph")->as_string(), "M");
  EXPECT_EQ(meta.find("name")->as_string(), "process_name");

  std::size_t spans = 0, instants = 0, counters = 0;
  for (const Json& e : events->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.find("dur")->as_double(), 0.0);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(counters, 1u);
}

/// Runs BFS through a traced engine and checks the exported timeline:
/// spans per track are monotone and non-overlapping, every engine-track
/// span is one SpMV iteration annotated with its SW/HW configuration.
TEST(Trace, EngineRunProducesWellFormedTimeline) {
  const auto a = sparse::uniform_random(3000, 3000, 40000, 11,
                                        sparse::ValueDist::kUniform01);
  Trace trace(true);
  runtime::EngineOptions opts;
  opts.trace = &trace;
  runtime::Engine eng(a, sim::SystemConfig::transmuter(2, 8), opts);
  const auto bfs = graph::bfs(eng, 0);
  ASSERT_GT(bfs.stats.iterations, 1u);

  const Json doc = Json::parse(trace.to_json().dump());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Map tid -> track name from the metadata events.
  std::map<std::int64_t, std::string> track_names;
  for (const Json& e : events->items()) {
    if (e.find("ph")->as_string() == "M" &&
        e.find("name")->as_string() == "thread_name") {
      track_names[e.find("tid")->as_int()] =
          e.find("args")->find("name")->as_string();
    }
  }

  std::map<std::int64_t, std::vector<const Json*>> spans_by_tid;
  for (const Json& e : events->items()) {
    if (e.find("ph")->as_string() == "X") {
      spans_by_tid[e.find("tid")->as_int()].push_back(&e);
    }
  }
  ASSERT_FALSE(spans_by_tid.empty());

  std::size_t engine_spans = 0;
  for (const auto& [tid, spans] : spans_by_tid) {
    double prev_end = -1.0;
    for (const Json* s : spans) {
      const double ts = s->find("ts")->as_double();
      const double dur = s->find("dur")->as_double();
      // ts-sorted exporter + sequential producers: spans on one track are
      // monotone and never overlap.
      EXPECT_GE(ts, prev_end - 1e-6) << "overlap on track "
                                     << track_names[tid];
      EXPECT_GE(dur, 0.0);
      prev_end = ts + dur;

      if (track_names[tid] == "engine") {
        ++engine_spans;
        const Json* args = s->find("args");
        ASSERT_NE(args, nullptr);
        const std::string& sw = args->find("sw")->as_string();
        EXPECT_TRUE(sw == "IP" || sw == "OP");
        const std::string& hw = args->find("hw")->as_string();
        EXPECT_TRUE(hw == "SC" || hw == "SCS" || hw == "PC" || hw == "PS");
        EXPECT_NE(args->find("iteration"), nullptr);
        EXPECT_NE(args->find("density"), nullptr);
      }
    }
  }
  // One engine-track span per SpMV iteration.
  EXPECT_EQ(engine_spans, eng.iterations().size());

  // A reconfiguring BFS leaves reconfigure spans on the machine track.
  std::uint32_t hw_switches = bfs.stats.hw_switches();
  if (hw_switches > 0) {
    std::size_t machine_spans = 0;
    for (const auto& [tid, spans] : spans_by_tid) {
      if (track_names[tid] == "machine") machine_spans += spans.size();
    }
    EXPECT_EQ(machine_spans, hw_switches);
  }
}

TEST(Trace, DisabledTraceKeepsEngineLogIdentical) {
  const auto a = sparse::uniform_random(1000, 1000, 15000, 3,
                                        sparse::ValueDist::kUniform01);
  // Null-sink run and traced run must simulate identically: tracing only
  // observes, never perturbs.
  runtime::Engine plain(a, sim::SystemConfig::transmuter(2, 4));
  Trace trace(true);
  runtime::EngineOptions opts;
  opts.trace = &trace;
  runtime::Engine traced(a, sim::SystemConfig::transmuter(2, 4), opts);

  const auto x = sparse::random_sparse_vector(1000, 0.3, 5);
  plain.spmv(runtime::Engine::Frontier::from_sparse(x), kernels::PlainSpmv{});
  traced.spmv(runtime::Engine::Frontier::from_sparse(x), kernels::PlainSpmv{});

  ASSERT_EQ(plain.iterations().size(), traced.iterations().size());
  EXPECT_EQ(plain.total_cycles(), traced.total_cycles());
  EXPECT_EQ(plain.iterations()[0].cycles, traced.iterations()[0].cycles);
  EXPECT_GT(trace.num_events(), 0u);
}

TEST(Trace, WriteCreatesParentDirectories) {
  Trace t(true);
  t.add_span("a", "s", 0, 1);
  const auto dir = ::testing::TempDir() + "cosparse_trace_test";
  const std::string path = dir + "/nested/trace.json";
  t.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const Json doc = Json::parse(ss.str());
  EXPECT_NE(doc.find("traceEvents"), nullptr);
}

}  // namespace
}  // namespace cosparse::obs
