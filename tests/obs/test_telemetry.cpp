// Telemetry registry tests: interval-spec parsing, SLO rule grammar and
// watchdog triggering (including the no-progress timeout), snapshot
// cadence under an injected clock, the exporter's JSONL/OpenMetrics
// goldens, and clean background-thread shutdown.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/exporter.h"

namespace cosparse::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- interval specs ----

TEST(TelemetryConfig, ParsesIterationAndWallClockSpecs) {
  EXPECT_FALSE(TelemetryConfig::parse("").enabled);
  EXPECT_FALSE(TelemetryConfig::parse("   ").enabled);

  const TelemetryConfig plain = TelemetryConfig::parse("100");
  EXPECT_TRUE(plain.enabled);
  EXPECT_EQ(plain.every_iterations, 100u);
  EXPECT_DOUBLE_EQ(plain.every_ms, 0.0);

  const TelemetryConfig iters = TelemetryConfig::parse("5i");
  EXPECT_EQ(iters.every_iterations, 5u);

  const TelemetryConfig ms = TelemetryConfig::parse("250ms");
  EXPECT_DOUBLE_EQ(ms.every_ms, 250.0);
  EXPECT_EQ(ms.every_iterations, 0u);

  const TelemetryConfig secs = TelemetryConfig::parse("2s");
  EXPECT_DOUBLE_EQ(secs.every_ms, 2000.0);
}

TEST(TelemetryConfig, RejectsMalformedSpecs) {
  EXPECT_THROW(TelemetryConfig::parse("abc"), Error);
  EXPECT_THROW(TelemetryConfig::parse("5x"), Error);
  EXPECT_THROW(TelemetryConfig::parse("-3"), Error);
  EXPECT_THROW(TelemetryConfig::parse("0"), Error);
  EXPECT_THROW(TelemetryConfig::parse("2.5i"), Error);  // fractional cadence
}

// ---- SLO rule grammar ----

TEST(SloRule, ParsesStatMetricOpThreshold) {
  const SloRule r = parse_slo_rule("p99.engine.iteration_ms<5");
  EXPECT_EQ(r.stat, "p99");
  EXPECT_EQ(r.metric, "engine.iteration_ms");  // dots in metric names ok
  EXPECT_EQ(r.op, "<");
  EXPECT_DOUBLE_EQ(r.threshold, 5.0);

  const SloRule ge = parse_slo_rule(" mean.sim.replay_ms >= 0.25 ");
  EXPECT_EQ(ge.stat, "mean");
  EXPECT_EQ(ge.metric, "sim.replay_ms");
  EXPECT_EQ(ge.op, ">=");
  EXPECT_DOUBLE_EQ(ge.threshold, 0.25);
}

TEST(SloRule, ParsesNoProgressPseudoMetric) {
  const SloRule r = parse_slo_rule("no_progress_ms<5000");
  EXPECT_TRUE(r.stat.empty());
  EXPECT_EQ(r.metric, "no_progress_ms");
  EXPECT_DOUBLE_EQ(r.threshold, 5000.0);
}

TEST(SloRule, RejectsMalformedRules) {
  EXPECT_THROW(parse_slo_rule("p99.iteration_ms"), Error);     // no op
  EXPECT_THROW(parse_slo_rule("p42.metric<5"), Error);         // bad stat
  EXPECT_THROW(parse_slo_rule("iteration_ms<5"), Error);       // no stat
  EXPECT_THROW(parse_slo_rule("p99.metric<fast"), Error);      // bad number
  EXPECT_THROW(parse_slo_rule("<5"), Error);                   // empty lhs
}

TEST(SloRule, ParsesCommaSeparatedLists) {
  const auto rules =
      parse_slo_rules("p99.a<1, no_progress_ms<500 ,count.b>=2");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].metric, "a");
  EXPECT_EQ(rules[1].metric, "no_progress_ms");
  EXPECT_EQ(rules[2].stat, "count");
  EXPECT_TRUE(parse_slo_rules("").empty());
}

// ---- watchdog ----

TelemetrySnapshot snapshot_with(const std::string& metric, double value,
                                std::uint64_t seq, double wall_ms,
                                std::uint64_t iterations) {
  StreamingHistogram h;
  h.observe(value);
  TelemetrySnapshot snap;
  snap.seq = seq;
  snap.wall_ms = wall_ms;
  snap.iterations = iterations;
  snap.hist.emplace_back(metric, h.summary());
  return snap;
}

TEST(SloWatchdog, TripsWhenAStatBreaksItsBound) {
  SloWatchdog dog;
  dog.add_rule(parse_slo_rule("max.iteration_ms<5"));
  EXPECT_TRUE(dog.evaluate(snapshot_with("iteration_ms", 2.0, 0, 1, 1)).empty());
  EXPECT_FALSE(dog.tripped());

  const auto v = dog.evaluate(snapshot_with("iteration_ms", 9.0, 1, 2, 2));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].seq, 1u);
  EXPECT_DOUBLE_EQ(v[0].observed, 9.0);
  EXPECT_DOUBLE_EQ(v[0].threshold, 5.0);
  EXPECT_TRUE(dog.tripped());
  EXPECT_EQ(dog.violations().size(), 1u);
}

TEST(SloWatchdog, SkipsRulesWithNoDataYet) {
  SloWatchdog dog;
  dog.add_rule(parse_slo_rule("p99.absent_metric<1"));
  EXPECT_TRUE(dog.evaluate(snapshot_with("other", 100.0, 0, 1, 1)).empty());
  EXPECT_FALSE(dog.tripped());
}

TEST(SloWatchdog, NoProgressTimeoutFiresOnlyWhileIterationsStall) {
  SloWatchdog dog;
  dog.add_rule(parse_slo_rule("no_progress_ms<100"));
  // First snapshot establishes the progress baseline.
  EXPECT_TRUE(dog.evaluate(snapshot_with("m", 1.0, 0, 0.0, 5)).empty());
  // 150 ms later with the same iteration count: stalled.
  const auto v = dog.evaluate(snapshot_with("m", 1.0, 1, 150.0, 5));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0].observed, 150.0);
  // Progress resumes: the stall clock resets.
  EXPECT_TRUE(dog.evaluate(snapshot_with("m", 1.0, 2, 200.0, 6)).empty());
}

// ---- cadence (injected clock) ----

TEST(Telemetry, IterationCadenceSnapshotsEveryNthTick) {
  Telemetry t(TelemetryConfig::parse("2i"), [] { return 0.0; });
  t.histogram("m").observe(1.0);
  for (std::uint64_t i = 1; i <= 5; ++i) t.tick(i);
  EXPECT_EQ(t.snapshots_taken(), 2u);  // at iterations 2 and 4
  t.flush();                           // end-of-run snapshot is unconditional
  EXPECT_EQ(t.snapshots_taken(), 3u);
  EXPECT_EQ(t.last_iterations(), 5u);
}

TEST(Telemetry, WallClockCadenceFollowsTheInjectedClock) {
  double now = 0.0;
  Telemetry t(TelemetryConfig::parse("100ms"), [&now] { return now; });
  t.histogram("m").observe(1.0);
  t.tick(1);  // 0 ms since the (implicit) last snapshot at 0: not due
  EXPECT_EQ(t.snapshots_taken(), 0u);
  now = 120.0;
  t.tick(2);
  EXPECT_EQ(t.snapshots_taken(), 1u);
  now = 170.0;
  t.tick(3);  // only 50 ms since the snapshot at 120
  EXPECT_EQ(t.snapshots_taken(), 1u);
  now = 230.0;
  t.tick(4);
  EXPECT_EQ(t.snapshots_taken(), 2u);
}

TEST(Telemetry, DisabledCadenceStillRecordsHistograms) {
  Telemetry t;  // no interval: bench binaries use this to harvest sums
  EXPECT_FALSE(t.enabled());
  t.histogram("m").observe(3.0);
  t.tick(1);
  t.flush();
  EXPECT_EQ(t.snapshots_taken(), 0u);
  ASSERT_NE(t.find_histogram("m"), nullptr);
  EXPECT_EQ(t.find_histogram("m")->count(), 1u);
  // A disabled tick must not self-report overhead either.
  EXPECT_EQ(t.find_histogram("telemetry.overhead_ms"), nullptr);
}

TEST(Telemetry, OverheadIsSelfReportedOnEveryEnabledTick) {
  Telemetry t(TelemetryConfig::parse("1i"), [] { return 0.0; });
  t.histogram("m").observe(1.0);
  t.tick(1);
  t.tick(2);
  const StreamingHistogram* overhead =
      t.find_histogram("telemetry.overhead_ms");
  ASSERT_NE(overhead, nullptr);
  EXPECT_EQ(overhead->count(), 2u);
}

// ---- exporter goldens (synchronous mode, fixed clock) ----

struct ExportedFiles {
  std::string jsonl;
  std::string prom;
};

ExportedFiles export_one_snapshot() {
  const std::string jsonl_path = ::testing::TempDir() + "cosparse_t.jsonl";
  const std::string prom_path = ::testing::TempDir() + "cosparse_t.prom";
  ExporterOptions eopts;
  eopts.jsonl_path = jsonl_path;
  eopts.prom_path = prom_path;
  eopts.background = false;  // synchronous: deterministic for goldens
  TelemetryExporter exporter(eopts);

  TelemetryConfig cfg;
  cfg.enabled = true;
  Telemetry t(cfg, [] { return 12.5; });
  t.set_header("tool", "test");
  t.set_exporter(&exporter);
  t.histogram("lat_ms").observe(2.5);
  t.flush();
  exporter.stop();
  return {read_file(jsonl_path), read_file(prom_path)};
}

TEST(TelemetryExporter, JsonlSnapshotMatchesGolden) {
  const ExportedFiles files = export_one_snapshot();
  EXPECT_EQ(files.jsonl,
            "{\"schema\":\"cosparse.telemetry/v1\",\"seq\":0,"
            "\"wall_ms\":12.5,\"iterations\":0,"
            "\"header\":{\"tool\":\"test\"},"
            "\"hist\":{\"lat_ms\":{\"count\":1,\"sum\":2.5,\"min\":2.5,"
            "\"max\":2.5,\"p50\":2.5,\"p90\":2.5,\"p99\":2.5,"
            "\"p999\":2.5}}}\n");
}

TEST(TelemetryExporter, OpenMetricsExpositionMatchesGolden) {
  const ExportedFiles files = export_one_snapshot();
  EXPECT_EQ(files.prom,
            "# TYPE cosparse_snapshot_seq counter\n"
            "cosparse_snapshot_seq_total 0\n"
            "# TYPE cosparse_iterations counter\n"
            "cosparse_iterations_total 0\n"
            "# TYPE cosparse_wall_ms gauge\n"
            "cosparse_wall_ms 12.5\n"
            "# TYPE cosparse_lat_ms summary\n"
            "cosparse_lat_ms{quantile=\"0.5\"} 2.5\n"
            "cosparse_lat_ms{quantile=\"0.9\"} 2.5\n"
            "cosparse_lat_ms{quantile=\"0.99\"} 2.5\n"
            "cosparse_lat_ms{quantile=\"0.999\"} 2.5\n"
            "cosparse_lat_ms_sum 2.5\n"
            "cosparse_lat_ms_count 1\n"
            "# EOF\n");
}

TEST(TelemetryExporter, MetricNamesAreSanitized) {
  EXPECT_EQ(openmetrics_name("engine.iteration_ms"),
            "cosparse_engine_iteration_ms");
  EXPECT_EQ(openmetrics_name("a-b c"), "cosparse_a_b_c");
}

TEST(TelemetryExporter, BackgroundStopDrainsTheQueue) {
  const std::string jsonl_path = ::testing::TempDir() + "cosparse_bg.jsonl";
  ExporterOptions eopts;
  eopts.jsonl_path = jsonl_path;
  {
    TelemetryExporter exporter(eopts);  // background worker thread
    for (int i = 0; i < 16; ++i) {
      exporter.publish("{\"seq\":" + std::to_string(i) + "}", "");
    }
    exporter.stop();  // must drain every queued line before joining
    EXPECT_EQ(exporter.lines_written(), 16u);
  }
  const std::string text = read_file(jsonl_path);
  int lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 16);
  EXPECT_NE(text.find("{\"seq\":15}"), std::string::npos);
}

TEST(TelemetryExporter, FlushWaitsForInFlightLines) {
  const std::string jsonl_path = ::testing::TempDir() + "cosparse_fl.jsonl";
  ExporterOptions eopts;
  eopts.jsonl_path = jsonl_path;
  TelemetryExporter exporter(eopts);
  for (int i = 0; i < 8; ++i) exporter.publish("{}", "");
  exporter.flush();
  EXPECT_EQ(exporter.lines_written(), 8u);
  exporter.stop();
}

// ---- snapshots omit unused histograms; report_json shape ----

TEST(Telemetry, SnapshotsSkipHistogramsWithNoSamples) {
  const std::string jsonl_path = ::testing::TempDir() + "cosparse_sk.jsonl";
  ExporterOptions eopts;
  eopts.jsonl_path = jsonl_path;
  eopts.background = false;
  TelemetryExporter exporter(eopts);
  TelemetryConfig cfg;
  cfg.enabled = true;
  Telemetry t(cfg, [] { return 1.0; });
  t.set_exporter(&exporter);
  t.histogram("used").observe(1.0);
  t.histogram("unused");  // created but never observed
  t.flush();
  exporter.stop();
  const Json snap = Json::parse(read_file(jsonl_path));
  ASSERT_NE(snap.find("hist"), nullptr);
  EXPECT_NE(snap.find("hist")->find("used"), nullptr);
  EXPECT_EQ(snap.find("hist")->find("unused"), nullptr);
}

TEST(Telemetry, ReportJsonCarriesHeaderSnapshotsAndSloVerdict) {
  SloWatchdog dog;
  dog.add_rule(parse_slo_rule("max.m<1"));
  Telemetry t(TelemetryConfig::parse("1i"), [] { return 0.0; });
  t.set_header("tool", "unit");
  t.set_watchdog(&dog);
  t.histogram("m").observe(5.0);
  t.tick(1);  // snapshot 0: max.m = 5 >= 1 -> violation
  const Json rep = t.report_json();
  EXPECT_EQ(rep.find("schema")->as_string(), "cosparse.telemetry/v1");
  EXPECT_TRUE(rep.find("enabled")->as_bool());
  EXPECT_EQ(rep.find("header")->find("tool")->as_string(), "unit");
  EXPECT_EQ(rep.find("snapshots")->as_int(), 1);
  ASSERT_NE(rep.find("slo"), nullptr);
  EXPECT_TRUE(rep.find("slo")->find("tripped")->as_bool());
  ASSERT_NE(rep.find("hist")->find("m"), nullptr);
}

}  // namespace
}  // namespace cosparse::obs
