#include "common/json.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse {
namespace {

TEST(Json, BuildsOrderedObjects) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  j["mango"] = 3;
  // Insertion order survives (reports diff cleanly across runs).
  EXPECT_EQ(j.dump(), R"({"zebra":1,"apple":2,"mango":3})");
}

TEST(Json, NullPromotesToObjectOrArrayOnFirstUse) {
  Json j;
  j["a"]["b"] = true;
  EXPECT_EQ(j.dump(), R"({"a":{"b":true}})");
  Json arr;
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.dump(), R"([1,"two"])");
}

TEST(Json, IntegersStayExact) {
  const std::int64_t big = (std::int64_t{1} << 53) + 1;  // not double-exact
  Json j = Json::object();
  j["v"] = big;
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.find("v")->as_int(), big);
}

TEST(Json, ParsesRoundTrip) {
  const char* text =
      R"({"name":"run","ok":true,"none":null,"n":42,"x":1.5,)"
      R"("arr":[1,2,3],"nested":{"k":"v"}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.find("name")->as_string(), "run");
  EXPECT_TRUE(j.find("ok")->as_bool());
  EXPECT_TRUE(j.find("none")->is_null());
  EXPECT_EQ(j.find("n")->as_int(), 42);
  EXPECT_DOUBLE_EQ(j.find("x")->as_double(), 1.5);
  EXPECT_EQ(j.find("arr")->size(), 3u);
  EXPECT_EQ(j.find("arr")->at(2).as_int(), 3);
  EXPECT_EQ(j.find("nested")->find("k")->as_string(), "v");
  // Dump of the parse re-parses to the same dump (fixed point).
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(Json, EscapesStrings) {
  Json j = Json::object();
  j["s"] = std::string("a\"b\\c\n\t\x01");
  const std::string text = j.dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.find("s")->as_string(), "a\"b\\c\n\t\x01");
}

TEST(Json, PrettyPrintReparses) {
  Json j = Json::object();
  j["arr"].push_back(1);
  j["arr"].push_back(2);
  j["obj"]["k"] = "v";
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty).dump(), j.dump());
}

TEST(Json, NonFiniteDumpsAsNull) {
  Json j = Json::object();
  j["inf"] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(j.dump(), R"({"inf":null})");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
}

TEST(Json, FindReturnsNullptrOnMissingKey) {
  const Json j = Json::parse(R"({"a":1})");
  EXPECT_EQ(j.find("b"), nullptr);
  EXPECT_NE(j.find("a"), nullptr);
}

TEST(Json, Uint64AboveInt64MaxFallsBackToDouble) {
  const Json j(static_cast<unsigned long long>(
      std::numeric_limits<std::uint64_t>::max()));
  EXPECT_TRUE(j.is_number());
  EXPECT_NEAR(j.as_double(), 1.8446744073709552e19, 1e4);
}

}  // namespace
}  // namespace cosparse
