#include "cosparsed.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/json.h"
#include "obs/telemetry.h"
#include "serve/config.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace cosparse::tools {

namespace {

/// Reads the JSONL request stream: ids are assigned by line number
/// (1-based, blank lines still count so errors are reportable by line),
/// well-formed requests go to `trace`, everything else becomes a
/// structured error response in `errors`.
void read_requests(std::istream& in, std::vector<serve::QueryRequest>& trace,
                   std::vector<serve::QueryResponse>& errors) {
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    serve::ParsedRequest parsed = serve::parse_request_line(line);
    if (parsed.ok()) {
      parsed.request->id = lineno;
      trace.push_back(std::move(*parsed.request));
    } else {
      serve::QueryResponse resp;
      resp.id = lineno;
      resp.status = serve::Status::kError;
      resp.error = parsed.error;
      resp.error_field = parsed.error_field;
      errors.push_back(std::move(resp));
    }
  }
  // The scheduler consumes arrivals in nondecreasing virtual time; a
  // stable sort keeps line order (= id order) among equal arrivals.
  std::stable_sort(trace.begin(), trace.end(),
                   [](const serve::QueryRequest& a,
                      const serve::QueryRequest& b) {
                     return a.arrival_us < b.arrival_us;
                   });
}

}  // namespace

int cosparsed_main(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err) {
  CliParser cli("cosparsed",
                "Multi-tenant graph-query serving daemon: deterministic "
                "trace replay or JSONL request serving over the Table III "
                "datasets (see --help of cosparse-lint serve for config "
                "linting)");
  cli.add_option("config", "cosparse.serve_config/v1 document (required)",
                 "");
  cli.add_option("requests",
                 "JSONL request stream ('-' = stdin); omitted: replay the "
                 "config's traffic section",
                 "");
  cli.add_option("serve-threads",
                 "host threads executing scheduled batches (wall time "
                 "only; results are byte-identical for any value)",
                 "1");
  cli.add_option("exec-mode", "override the config's exec_mode (sim|native)",
                 "");
  cli.add_option("data-dir",
                 "real edge-list directory for the dataset registry "
                 "(default: synthetic Table III stand-ins)",
                 "");
  cli.add_option("report-out", "run-report output path",
                 "cosparsed_report.json");
  cli.add_option("responses-out",
                 "per-response JSONL (wire form, includes wall times)", "");
  cli.add_option("trace-out",
                 "write the expanded request trace as JSONL and exit "
                 "(replay mode only; feed it back via --requests)",
                 "");
  obs::TelemetrySession::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 2;

  if (cli.str("config").empty()) {
    err << "cosparsed: --config is required\n";
    return 2;
  }

  serve::ServeConfig cfg;
  try {
    std::ifstream in(cli.str("config"));
    if (!in.good())
      throw Error("cannot open config file: " + cli.str("config"));
    std::stringstream buf;
    buf << in.rdbuf();
    cfg = serve::ServeConfig::from_json(Json::parse(buf.str()));
  } catch (const Error& e) {
    err << "cosparsed: " << e.what() << "\n";
    return 2;
  }

  const std::string exec_override = cli.str("exec-mode");
  if (!exec_override.empty()) {
    if (exec_override != "sim" && exec_override != "native") {
      err << "cosparsed: --exec-mode must be sim or native\n";
      return 2;
    }
    cfg.exec_mode = exec_override;
  }

  // Deterministic trace export: the load generator half on its own.
  if (!cli.str("trace-out").empty()) {
    const auto trace = serve::generate_trace(cfg.traffic);
    std::ofstream o(cli.str("trace-out"));
    if (!o.good()) {
      err << "cosparsed: cannot write " << cli.str("trace-out") << "\n";
      return 2;
    }
    for (const serve::QueryRequest& r : trace)
      o << serve::to_json(r).dump() << "\n";
    out << "cosparsed: wrote " << trace.size() << " request(s) to "
        << cli.str("trace-out") << "\n";
    return 0;
  }

  obs::TelemetrySession session;
  session.init(cli, "cosparsed");

  serve::ServerOptions sopts;
  sopts.serve_threads =
      static_cast<std::uint32_t>(std::max<std::int64_t>(
          1, cli.integer("serve-threads")));
  sopts.telemetry = session.telemetry();
  sopts.data_dir = cli.str("data-dir");
  serve::Server server(std::move(cfg), sopts);

  std::vector<serve::QueryResponse> pre_errors;
  Json report;
  try {
    if (cli.str("requests").empty()) {
      report = server.replay();
    } else {
      std::vector<serve::QueryRequest> trace;
      if (cli.str("requests") == "-") {
        read_requests(std::cin, trace, pre_errors);
      } else {
        std::ifstream in(cli.str("requests"));
        if (!in.good()) {
          err << "cosparsed: cannot open " << cli.str("requests") << "\n";
          return 2;
        }
        read_requests(in, trace, pre_errors);
      }
      report = server.serve(trace, pre_errors);
    }
  } catch (const Error& e) {
    err << "cosparsed: " << e.what() << "\n";
    return 2;
  }

  // Final telemetry snapshot BEFORE serializing the report so the
  // document carries the complete histogram digests and SLO verdicts
  // finalize() will gate on.
  if (session.armed()) {
    session.telemetry()->flush();
    report["telemetry"] = session.telemetry()->report_json();
  }

  const serve::ScheduleStats& stats = server.schedule().stats;
  out << "cosparsed: " << stats.admitted << " admitted, " << stats.rejected
      << " rejected, " << stats.errored + pre_errors.size() << " errored ("
      << server.schedule().batches.size() << " batches, scheduler="
      << server.config().scheduler_type << ", exec="
      << server.config().exec_mode << ", " << sopts.serve_threads
      << " serve thread(s))\n";
  out << "  virtual latency p50/p99: "
      << serve::latency_percentile_us(server.schedule().responses, 50.0)
      << "/"
      << serve::latency_percentile_us(server.schedule().responses, 99.0)
      << " us; makespan " << stats.makespan_us << " us; peak queue "
      << stats.peak_queue_depth << "\n";
  if (const Json* timing = report.find("timing"); timing != nullptr) {
    out << "  host wall: " << timing->find("total_wall_ms")->as_double()
        << " ms total, request p99 "
        << timing->find("request_ms_p99")->as_double() << " ms, "
        << timing->find("throughput_rps")->as_double() << " req/s\n";
  }

  if (!cli.str("report-out").empty()) {
    std::ofstream o(cli.str("report-out"));
    if (!o.good()) {
      err << "cosparsed: cannot write " << cli.str("report-out") << "\n";
      return 2;
    }
    o << report.dump(1) << "\n";
    out << "  wrote " << cli.str("report-out") << "\n";
  }

  if (!cli.str("responses-out").empty()) {
    std::vector<const serve::QueryResponse*> ordered;
    for (const serve::QueryResponse& r : server.schedule().responses)
      ordered.push_back(&r);
    for (const serve::QueryResponse& r : pre_errors) ordered.push_back(&r);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const serve::QueryResponse* a,
                        const serve::QueryResponse* b) {
                       return a->id < b->id;
                     });
    std::ofstream o(cli.str("responses-out"));
    if (!o.good()) {
      err << "cosparsed: cannot write " << cli.str("responses-out") << "\n";
      return 2;
    }
    for (const serve::QueryResponse* r : ordered)
      o << serve::wire_json(*r).dump() << "\n";
    out << "  wrote " << ordered.size() << " response(s) to "
        << cli.str("responses-out") << "\n";
  }

  return session.finalize();
}

}  // namespace cosparse::tools
