// cosparse-prof: offline analysis of cosparse.run_report/v1 documents.
//
// Two subcommands, both operating purely on report JSON (no simulator
// dependency, so reports from different builds remain comparable):
//
//   summarize <report.json>...
//     prints, per report, the memory-profile region and per-tile breakdown
//     tables and the decision-audit timeline (one row per SpMV invocation:
//     features, CVD margin, chosen config, counterfactual estimates).
//
//   diff <baseline.json> <candidate.json> [--max-regress 5%]
//     compares the candidate against the baseline on the gated metrics
//     (total cycles, L1/L2 misses, DRAM bytes) plus informational
//     per-region miss deltas, and exits nonzero when any gated metric
//     regressed by more than the allowed fraction — the CI gate against a
//     committed golden baseline.
//
// The comparison/summary logic lives in this header's functions (library
// target cosparse_prof_lib) so tests/tools/test_cosparse_prof.cpp can
// drive it on crafted documents; cosparse_prof_main.cpp is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"

namespace cosparse::tools {

struct DiffOptions {
  /// Allowed relative regression on gated metrics (0.05 = 5% worse).
  double max_regress = 0.05;
};

struct DiffRow {
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_change = 0.0;  ///< (candidate - baseline) / baseline
  bool gated = false;       ///< counts towards the exit code
  bool regressed = false;   ///< gated && rel_change > max_regress
};

struct DiffResult {
  std::vector<DiffRow> rows;
  bool regressed = false;  ///< any gated row regressed
};

/// Parses "5%", "5" (both 5%) or "0.05x" (fraction) into a fraction.
/// Throws cosparse::Error on malformed input or a negative value.
[[nodiscard]] double parse_regress_limit(const std::string& text);

/// Compares two run-report documents (see file comment for the metric
/// set). Metrics missing from either document are skipped — diffing a
/// report against itself always yields zero rows regressed.
[[nodiscard]] DiffResult diff_reports(const Json& baseline,
                                      const Json& candidate,
                                      const DiffOptions& opts);

void print_diff(std::ostream& os, const DiffResult& result,
                const DiffOptions& opts);

/// Prints the summary tables for one report document.
void summarize_report(std::ostream& os, const Json& doc,
                      const std::string& name);

/// Full CLI (argument parsing + file IO). Returns the process exit code:
/// 0 ok, 1 regression or validation failure, 2 usage error.
int prof_main(int argc, const char* const* argv);

}  // namespace cosparse::tools
