// cosparse-prof: offline analysis of cosparse.run_report/v1 documents
// and folded-stack CPU profiles.
//
// Five subcommands, all operating purely on report/telemetry JSON or
// folded-stack text (no simulator dependency, so artifacts from different
// builds remain comparable):
//
//   summarize <report.json>... [--telemetry <file.jsonl>]...
//     prints, per report, the memory-profile region and per-tile breakdown
//     tables and the decision-audit timeline (one row per SpMV invocation:
//     features, CVD margin, chosen config, counterfactual estimates).
//     Each --telemetry file is summarized as per-snapshot percentile
//     tables (count/Δcount/mean/p50/p90/p99/p999/max per metric) so an
//     exported cosparse.telemetry/v1 stream can be read offline.
//
//   diff <baseline.json> <candidate.json> [--max-regress 5%]
//     compares the candidate against the baseline on the gated metrics
//     (total cycles, L1/L2 misses, DRAM bytes) plus informational
//     per-region miss deltas, and exits nonzero when any gated metric
//     regressed by more than the allowed fraction — the CI gate against a
//     committed golden baseline.
//
//   extract <report.json> [--out <file>]
//     writes the simulated-results subset of a run report (every section
//     except the wall-clock-bearing "telemetry" and "cpu_profile" ones,
//     obs::results_subset) so CI can byte-compare an instrumented run
//     against the instrument-off baseline with plain cmp.
//
//   flame <profile.folded> [--out <flame.html>]
//     renders a --cpu-profile folded-stack file (obs::SampleProfiler
//     output) into a self-contained HTML/SVG flamegraph (default output:
//     <profile.folded>.html) and prints the per-phase share table.
//
//   flamediff <baseline.folded> <candidate.folded> [--max-regress 5%]
//     compares per-phase sample shares of two folded profiles and exits
//     nonzero when any phase's share of total samples grew by more than
//     the limit (in absolute share points: 5% = 0.05 share growth) —
//     the same exit-code contract as `diff`.
//
// The comparison/summary logic lives in this header's functions (library
// target cosparse_prof_lib) so tests/tools/test_cosparse_prof.cpp can
// drive it on crafted documents; cosparse_prof_main.cpp is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"

namespace cosparse::tools {

struct DiffOptions {
  /// Allowed relative regression on gated metrics (0.05 = 5% worse).
  double max_regress = 0.05;
};

struct DiffRow {
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_change = 0.0;  ///< (candidate - baseline) / baseline
  bool gated = false;       ///< counts towards the exit code
  bool regressed = false;   ///< gated && rel_change > max_regress
};

struct DiffResult {
  std::vector<DiffRow> rows;
  bool regressed = false;  ///< any gated row regressed
};

/// Parses "5%", "5" (both 5%) or "0.05x" (fraction) into a fraction.
/// Throws cosparse::Error on malformed input or a negative value.
[[nodiscard]] double parse_regress_limit(const std::string& text);

/// Compares two run-report documents (see file comment for the metric
/// set). Metrics missing from either document are skipped — diffing a
/// report against itself always yields zero rows regressed.
[[nodiscard]] DiffResult diff_reports(const Json& baseline,
                                      const Json& candidate,
                                      const DiffOptions& opts);

void print_diff(std::ostream& os, const DiffResult& result,
                const DiffOptions& opts);

/// Prints the summary tables for one report document.
void summarize_report(std::ostream& os, const Json& doc,
                      const std::string& name);

/// Prints per-snapshot percentile tables for a telemetry JSONL stream
/// (the full file contents). Throws cosparse::Error on unparseable lines.
void summarize_telemetry(std::ostream& os, const std::string& jsonl_text,
                         const std::string& name);

/// Full CLI (argument parsing + file IO). Returns the process exit code:
/// 0 ok, 1 regression or validation failure, 2 usage error.
int prof_main(int argc, const char* const* argv);

}  // namespace cosparse::tools
