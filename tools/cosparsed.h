// cosparsed — the CoSPARSE multi-tenant graph-query serving daemon.
//
// Serves BFS/SSSP/PageRank/CF queries over the named Table III datasets
// through the reconfigurable engine, in two modes:
//
//   replay (default)   --config <serve_config.json>
//     expands the config's traffic section into a seeded deterministic
//     trace (Poisson or bursty arrivals) and serves it end-to-end. Same
//     (seed, trace-config) -> byte-identical schedule, results and
//     report functional subset, for ANY --serve-threads value.
//
//   request stream     --config <...> --requests <file.jsonl|->
//     serves explicit JSONL request documents (one per line; '-' reads
//     stdin). Malformed lines — truncated JSON, unknown fields, type
//     errors — become structured error responses, never crashes; ids are
//     assigned by line number and requests are scheduled by their
//     arrival_us (0 = all at trace start).
//
// Outputs: a cosparse.run_report/v1 document (--report-out) whose
// "results" section is deterministic and whose "timing"/"telemetry"
// sections carry host wall-clock truth, plus optional per-response JSONL
// (--responses-out, wire form with wall_service_ms). The standard
// telemetry options (--telemetry-interval/--slo/--slo-strict/...) arm
// the serve.request_ms / serve.batch_ms / serve.queue_* histograms; with
// --slo-strict the process exits 3 on any violated rule — the CI serve
// leg gates on p99.serve.request_ms this way.
//
// The driver lives here (library target cosparsed_lib) so
// tests/tools/test_cosparsed.cpp can run the CLI in-process;
// cosparsed_main.cpp is a thin wrapper.
#pragma once

#include <iosfwd>

namespace cosparse::tools {

/// Full CLI (argument parsing + file IO). Returns the process exit code:
/// 0 ok, 2 usage/config error, 3 strict-SLO violation.
int cosparsed_main(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err);

}  // namespace cosparse::tools
