#include <iostream>

#include "cosparse_lint.h"

int main(int argc, char** argv) {
  return cosparse::tools::lint_main(argc, argv, std::cout, std::cerr);
}
