#include "cosparse_lint.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "verify/telemetry_lint.h"

namespace cosparse::tools {

namespace {

constexpr const char* kUsage =
    "usage: cosparse-lint [plan|report|telemetry] <file>... [options]\n"
    "\n"
    "subcommands:\n"
    "  plan       lint cosparse.run_plan/v1 documents (default)\n"
    "  report     lint cosparse.run_report/v1 documents\n"
    "  telemetry  lint exported telemetry files: *.prom/*.txt as\n"
    "             OpenMetrics text, anything else as snapshot JSONL\n"
    "\n"
    "options:\n"
    "  --json               print cosparse.lint_report/v1 JSON instead of "
    "text\n"
    "  --strict             exit nonzero on warnings too\n"
    "  --report-out <file>  also write the last lint report JSON to <file>\n";

struct Options {
  std::string subcommand = "plan";
  std::vector<std::string> files;
  bool json = false;
  bool strict = false;
  std::string report_out;
};

bool parse_args(int argc, const char* const* argv, Options& opts,
                std::ostream& err) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t i = 0;
  if (!args.empty() &&
      (args[0] == "plan" || args[0] == "report" || args[0] == "telemetry")) {
    opts.subcommand = args[0];
    ++i;
  }
  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      opts.json = true;
    } else if (a == "--strict") {
      opts.strict = true;
    } else if (a == "--report-out") {
      if (i + 1 >= args.size()) {
        err << "cosparse-lint: --report-out needs a file argument\n";
        return false;
      }
      opts.report_out = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      err << "cosparse-lint: unknown option " << a << "\n";
      return false;
    } else {
      opts.files.push_back(a);
    }
  }
  if (opts.files.empty()) {
    err << "cosparse-lint: no input files\n";
    return false;
  }
  return true;
}

}  // namespace

void print_lint_report(std::ostream& os, const verify::LintReport& report) {
  os << report.subject() << ":\n";
  for (const auto& f : report.findings()) {
    os << "  " << verify::to_string(f.severity) << "[" << f.id << "] @"
       << f.location.name << ": " << f.message << "\n";
  }
  os << "  " << report.count(verify::Severity::kError) << " error(s), "
     << report.count(verify::Severity::kWarning) << " warning(s), "
     << report.count(verify::Severity::kInfo) << " info(s)\n";
}

int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  Options opts;
  if (!parse_args(argc, argv, opts, err)) {
    err << kUsage;
    return 2;
  }

  bool gate_tripped = false;
  std::string last_report_json;
  for (const std::string& path : opts.files) {
    std::ifstream in(path);
    if (!in.good()) {
      err << "cosparse-lint: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    verify::LintReport report(path);
    if (opts.subcommand == "telemetry") {
      // Dispatch on file shape: OpenMetrics text exposition vs snapshot
      // JSONL (both produced by the telemetry exporter).
      const bool openmetrics = path.size() >= 5 &&
                               (path.substr(path.size() - 5) == ".prom" ||
                                path.substr(path.size() - 4) == ".txt");
      report.add(openmetrics ? verify::lint_openmetrics(buf.str())
                             : verify::lint_telemetry_jsonl(buf.str()));
      report.sort_by_severity();
    } else {
      try {
        const Json doc = Json::parse(buf.str());
        report = opts.subcommand == "report"
                     ? verify::lint_run_report_json(doc, path)
                     : verify::lint_plan_json(doc, path);
      } catch (const Error& e) {
        report.add(verify::Finding{
            "plan", "plan.unparseable", verify::Severity::kError, e.what(),
            verify::Location::document("(root)")});
      }
    }

    if (opts.json) {
      out << report.to_json().dump(2) << "\n";
    } else {
      print_lint_report(out, report);
    }
    last_report_json = report.to_json().dump(2);
    if (report.errors() > 0 ||
        (opts.strict && report.count(verify::Severity::kWarning) > 0)) {
      gate_tripped = true;
    }
  }

  if (!opts.report_out.empty()) {
    std::ofstream o(opts.report_out);
    if (!o.good()) {
      err << "cosparse-lint: cannot write " << opts.report_out << "\n";
      return 2;
    }
    o << last_report_json << "\n";
  }
  return gate_tripped ? 1 : 0;
}

}  // namespace cosparse::tools
