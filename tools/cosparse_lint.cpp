#include "cosparse_lint.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/code_lint.h"
#include "common/error.h"
#include "common/json.h"
#include "verify/baseline.h"
#include "verify/serve_lint.h"
#include "verify/telemetry_lint.h"

namespace cosparse::tools {

namespace {

constexpr const char* kUsage =
    "usage: cosparse-lint [plan|report|telemetry|serve|code] <file>... "
    "[options]\n"
    "\n"
    "subcommands:\n"
    "  plan       lint cosparse.run_plan/v1 documents (default)\n"
    "  report     lint cosparse.run_report/v1 documents\n"
    "  telemetry  lint exported telemetry files: *.prom/*.txt as\n"
    "             OpenMetrics text, anything else as snapshot JSONL\n"
    "  serve      lint cosparse.serve_config/v1 documents (cosparsed /\n"
    "             bench/serve_load trace configs)\n"
    "  code       scan the source tree for signal-safety, FP-exactness,\n"
    "             determinism and phase-hygiene hazards; <file> is the\n"
    "             build's compile_commands.json\n"
    "\n"
    "options:\n"
    "  --json               print one cosparse.lint_findings/v1 document\n"
    "  --strict             exit nonzero on warnings too\n"
    "  --baseline <file>    cosparse.lint_baseline/v1 suppressions\n"
    "  --root <dir>         (code) source root; default: parent of the\n"
    "                       compile db's directory\n"
    "  --report-out <file>  also write the lint_findings JSON to <file>\n";

struct Options {
  std::string subcommand = "plan";
  std::vector<std::string> files;
  bool json = false;
  bool strict = false;
  std::string baseline_path;
  std::string root;
  std::string report_out;
};

bool parse_args(int argc, const char* const* argv, Options& opts,
                std::ostream& err) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t i = 0;
  if (!args.empty() && (args[0] == "plan" || args[0] == "report" ||
                        args[0] == "telemetry" || args[0] == "serve" ||
                        args[0] == "code")) {
    opts.subcommand = args[0];
    ++i;
  }
  const auto value = [&](const char* flag, std::string& slot) {
    if (i + 1 >= args.size()) {
      err << "cosparse-lint: " << flag << " needs an argument\n";
      return false;
    }
    slot = args[++i];
    return true;
  };
  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      opts.json = true;
    } else if (a == "--strict") {
      opts.strict = true;
    } else if (a == "--baseline") {
      if (!value("--baseline", opts.baseline_path)) return false;
    } else if (a == "--root") {
      if (!value("--root", opts.root)) return false;
    } else if (a == "--report-out") {
      if (!value("--report-out", opts.report_out)) return false;
    } else if (!a.empty() && a[0] == '-') {
      err << "cosparse-lint: unknown option " << a << "\n";
      return false;
    } else {
      opts.files.push_back(a);
    }
  }
  if (opts.subcommand == "code") {
    if (opts.files.size() > 1) {
      err << "cosparse-lint: code takes at most one compile_commands.json\n";
      return false;
    }
    if (opts.files.empty() && opts.root.empty()) {
      err << "cosparse-lint: code needs a compile_commands.json or --root\n";
      return false;
    }
  } else if (opts.files.empty()) {
    err << "cosparse-lint: no input files\n";
    return false;
  }
  return true;
}

/// Loads and parses --baseline; a missing/invalid file is a usage error
/// (exit 2) — silently ignoring a broken baseline would un-gate CI.
bool load_baseline(const Options& opts, verify::Baseline& baseline,
                   std::ostream& err) {
  if (opts.baseline_path.empty()) return true;
  std::ifstream in(opts.baseline_path);
  if (!in.good()) {
    err << "cosparse-lint: cannot open baseline " << opts.baseline_path
        << "\n";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    baseline = verify::Baseline::from_json(Json::parse(buf.str()));
  } catch (const Error& e) {
    err << "cosparse-lint: bad baseline " << opts.baseline_path << ": "
        << e.what() << "\n";
    return false;
  }
  return true;
}

verify::LintReport lint_code_subject(const Options& opts) {
  namespace fs = std::filesystem;
  analyze::CodeLintOptions code;
  if (!opts.files.empty()) code.compile_db_path = opts.files.front();
  if (!opts.root.empty()) {
    code.root = opts.root;
  } else {
    // <root>/build/compile_commands.json → <root>.
    code.root =
        fs::absolute(code.compile_db_path).parent_path().parent_path()
            .string();
  }
  return analyze::lint_code(code);
}

}  // namespace

void print_lint_report(std::ostream& os, const verify::LintReport& report) {
  os << report.subject() << ":\n";
  for (const auto& f : report.findings()) {
    os << "  " << (f.suppressed ? "suppressed " : "")
       << verify::to_string(f.severity) << "[" << f.id << "] @"
       << f.location.name << ": " << f.message << "\n";
  }
  os << "  " << report.count(verify::Severity::kError) << " error(s), "
     << report.count(verify::Severity::kWarning) << " warning(s), "
     << report.count(verify::Severity::kInfo) << " info(s)";
  if (report.suppressed_count() > 0)
    os << ", " << report.suppressed_count() << " suppressed";
  os << "\n";
}

int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  Options opts;
  if (!parse_args(argc, argv, opts, err)) {
    err << kUsage;
    return 2;
  }
  verify::Baseline baseline;
  if (!load_baseline(opts, baseline, err)) return 2;

  std::vector<verify::LintReport> reports;
  if (opts.subcommand == "code") {
    try {
      reports.push_back(lint_code_subject(opts));
    } catch (const Error& e) {
      err << "cosparse-lint: " << e.what() << "\n";
      return 2;
    }
  } else {
    for (const std::string& path : opts.files) {
      std::ifstream in(path);
      if (!in.good()) {
        err << "cosparse-lint: cannot open " << path << "\n";
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();

      verify::LintReport report(path);
      if (opts.subcommand == "telemetry") {
        // Dispatch on file shape: OpenMetrics text exposition vs snapshot
        // JSONL (both produced by the telemetry exporter).
        const bool openmetrics = path.size() >= 5 &&
                                 (path.substr(path.size() - 5) == ".prom" ||
                                  path.substr(path.size() - 4) == ".txt");
        report.add(openmetrics ? verify::lint_openmetrics(buf.str())
                               : verify::lint_telemetry_jsonl(buf.str()));
        report.sort_by_severity();
      } else {
        try {
          const Json doc = Json::parse(buf.str());
          report = opts.subcommand == "report"
                       ? verify::lint_run_report_json(doc, path)
                   : opts.subcommand == "serve"
                       ? verify::lint_serve_config_json(doc, path)
                       : verify::lint_plan_json(doc, path);
        } catch (const Error& e) {
          report.add(verify::Finding{
              "plan", "plan.unparseable", verify::Severity::kError, e.what(),
              verify::Location::document("(root)")});
        }
      }
      reports.push_back(std::move(report));
    }
  }

  bool gate_tripped = false;
  for (verify::LintReport& report : reports) {
    baseline.apply(report);
    if (!opts.json) print_lint_report(out, report);
    if (report.errors() > 0 ||
        (opts.strict && report.count(verify::Severity::kWarning) > 0)) {
      gate_tripped = true;
    }
  }
  const Json doc = verify::lint_findings_json(opts.subcommand, reports);
  if (opts.json) out << doc.dump(2) << "\n";
  if (!opts.report_out.empty()) {
    std::ofstream o(opts.report_out);
    if (!o.good()) {
      err << "cosparse-lint: cannot write " << opts.report_out << "\n";
      return 2;
    }
    o << doc.dump(2) << "\n";
  }
  return gate_tripped ? 1 : 0;
}

}  // namespace cosparse::tools
