// cosparse-top: live terminal dashboard over a telemetry JSONL stream.
//
// Tails the --telemetry-out file written by the TelemetryExporter and
// renders a refreshing per-run dashboard: the self-describing snapshot
// header, progress (iteration count + rate derived from consecutive
// snapshots), a per-metric percentile table, per-tile busy-cycle bars
// from the snapshot's `extra.tile_busy_cycles` sampler, and any SLO
// violations the watchdog recorded. One-shot by default ("render the
// stream as it stands now"); --follow re-reads the file on a cadence and
// repaints with an ANSI home+clear, giving a `top`-style live view of a
// running simulation.
//
// The renderer is a pure function of the parsed snapshot list (library
// target cosparse_top_lib) so tests/tools/test_cosparse_top.cpp can
// drive it on crafted streams; cosparse_top_main.cpp is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"

namespace cosparse::tools {

/// Parses a telemetry JSONL stream into snapshot objects. Unparseable
/// lines are skipped (a live tail can observe a torn final line mid-write)
/// and blank lines ignored, so the result is always the complete prefix.
[[nodiscard]] std::vector<Json> parse_snapshots(const std::string& text);

/// Renders one dashboard frame for the stream (see file comment for the
/// layout). An empty snapshot list renders a "waiting for snapshots"
/// placeholder so --follow can start before the producer's first tick.
/// `width` caps the rendered line width in columns (0 = unlimited): on
/// narrow terminals the busy bars shrink and over-long lines — the
/// percentile table above all — are truncated instead of wrapping, which
/// would tear the --follow repaint.
void render_dashboard(std::ostream& os, const std::vector<Json>& snaps,
                      int width = 0);

/// Terminal width in columns for the process's stdout, or 0 when stdout
/// is not a terminal (piped/tested output stays unclipped).
[[nodiscard]] int detect_terminal_width();

/// Full CLI: cosparse-top <file.jsonl> [--follow] [--refresh-ms N]
/// [--frames N] [--width N]. Returns the process exit code: 0 ok,
/// 2 usage error.
int top_main(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err);

}  // namespace cosparse::tools
