#include "cosparse_prof.h"

int main(int argc, char** argv) {
  return cosparse::tools::prof_main(argc, argv);
}
