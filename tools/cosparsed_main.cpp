#include <iostream>

#include "cosparsed.h"

int main(int argc, char** argv) {
  return cosparse::tools::cosparsed_main(argc, argv, std::cout, std::cerr);
}
