#include "cosparse_top.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "obs/histogram.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/ioctl.h>
#include <unistd.h>
#define COSPARSE_TOP_HAS_TTY 1
#endif

namespace cosparse::tools {

namespace {

double number_or(const Json* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string json_scalar(const Json& v) {
  return v.is_string() ? v.as_string() : v.dump();
}

/// "tool=quickstart seed=42 sim_threads=4 interval=1i" from the snapshot
/// header (self-describing streams — no run report needed).
std::string header_line(const Json& snap) {
  const Json* header = snap.find("header");
  if (header == nullptr || !header->is_object()) return "(no header)";
  std::string out;
  for (const auto& [key, value] : header->members()) {
    if (!out.empty()) out += "  ";
    out += key + "=" + json_scalar(value);
  }
  return out.empty() ? "(no header)" : out;
}

std::string bar(double frac, int width) {
  frac = std::clamp(frac, 0.0, 1.0);
  const int fill = static_cast<int>(frac * width + 0.5);
  std::string out(static_cast<std::size_t>(fill), '#');
  out.append(static_cast<std::size_t>(width - fill), ' ');
  return out;
}

/// Per-second rate from the delta between two snapshots ("-" when there
/// is no previous snapshot or no wall time elapsed between them).
std::string rate_cell(double delta, double wall_delta_ms) {
  if (wall_delta_ms <= 0.0) return "-";
  return Table::fmt(delta / (wall_delta_ms / 1000.0), 1);
}

void render_metrics(std::ostream& os, const Json& snap, const Json* prev) {
  const Json* hist = snap.find("hist");
  if (hist == nullptr || !hist->is_object() || hist->size() == 0) {
    os << "  (no metrics yet)\n";
    return;
  }
  const double wall_delta =
      number_or(snap.find("wall_ms"), 0.0) -
      (prev != nullptr ? number_or(prev->find("wall_ms"), 0.0) : 0.0);
  const Json* prev_hist =
      prev != nullptr ? prev->find("hist") : nullptr;

  Table table({"metric", "count", "rate/s", "mean", "p50", "p90", "p99",
               "max"});
  for (const auto& [name, digest] : hist->members()) {
    obs::HistogramSummary s;
    try {
      s = obs::HistogramSummary::from_json(digest);
    } catch (const Error&) {
      continue;  // torn or foreign digest: leave it to cosparse-lint
    }
    double prev_count = 0.0;
    if (prev_hist != nullptr && prev_hist->is_object()) {
      if (const Json* pd = prev_hist->find(name); pd != nullptr) {
        prev_count = number_or(pd->find("count"), 0.0);
      }
    }
    table.add_row({name, Table::fmt(static_cast<double>(s.count), 0),
                   prev == nullptr
                       ? "-"
                       : rate_cell(static_cast<double>(s.count) - prev_count,
                                   wall_delta),
                   Table::fmt(s.mean()), Table::fmt(s.p50), Table::fmt(s.p90),
                   Table::fmt(s.p99), Table::fmt(s.max)});
  }
  table.print(os);
}

void render_tiles(std::ostream& os, const Json& snap, int bar_width) {
  // Native-mode streams (header exec_mode=native) carry no tile cycle
  // model; suppress the busy-bar panel and say why instead of rendering
  // an eternally empty one. The exec_mode header field itself shows in
  // the header line like any other field.
  if (const Json* header = snap.find("header");
      header != nullptr && header->is_object()) {
    if (const Json* mode = header->find("exec_mode");
        mode != nullptr && mode->is_string() &&
        mode->as_string() == "native") {
      os << "tiles: (native mode: no tile busy bars)\n";
      return;
    }
  }
  const Json* extra = snap.find("extra");
  if (extra == nullptr || !extra->is_object()) return;
  const Json* tiles = extra->find("tile_busy_cycles");
  if (tiles == nullptr || !tiles->is_array() || tiles->size() == 0) return;

  double max_busy = 0.0;
  for (const Json& t : tiles->items()) {
    if (t.is_number()) max_busy = std::max(max_busy, t.as_double());
  }
  os << "tiles (busy cycles";
  if (const Json* hw = extra->find("hw"); hw != nullptr && hw->is_string()) {
    os << ", hw=" << hw->as_string();
  }
  if (const Json* imb = extra->find("load_imbalance");
      imb != nullptr && imb->is_number()) {
    os << ", imbalance=" << Table::fmt(imb->as_double(), 2);
  }
  os << ")\n";
  std::size_t index = 0;
  for (const Json& t : tiles->items()) {
    const double busy = t.is_number() ? t.as_double() : 0.0;
    os << "  tile " << index++ << " |"
       << bar(max_busy > 0.0 ? busy / max_busy : 0.0, bar_width) << "| "
       << Table::fmt(busy, 0) << "\n";
  }
}

void render_slo(std::ostream& os, const std::vector<Json>& snaps) {
  std::vector<std::string> messages;
  for (const Json& snap : snaps) {
    const Json* violations = snap.find("slo_violations");
    if (violations == nullptr || !violations->is_array()) continue;
    for (const Json& v : violations->items()) {
      const Json* msg = v.find("message");
      messages.push_back(msg != nullptr && msg->is_string() ? msg->as_string()
                                                            : v.dump());
    }
  }
  if (messages.empty()) return;
  os << "SLO violations (" << messages.size() << ")\n";
  for (const std::string& m : messages) os << "  ! " << m << "\n";
}

int usage(std::ostream& err) {
  err << "usage: cosparse-top <telemetry.jsonl> [--follow]"
      << " [--refresh-ms <n>] [--frames <n>] [--width <cols>]\n";
  return 2;
}

}  // namespace

std::vector<Json> parse_snapshots(const std::string& text) {
  std::vector<Json> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      Json snap = Json::parse(line);
      if (snap.is_object()) out.push_back(std::move(snap));
    } catch (const Error&) {
      // A live tail can race the producer and see a torn final line;
      // render the complete prefix instead of failing the frame.
    }
  }
  return out;
}

namespace {

void render_dashboard_impl(std::ostream& os, const std::vector<Json>& snaps,
                           int bar_width) {
  if (snaps.empty()) {
    os << "cosparse-top: waiting for snapshots...\n";
    return;
  }
  const Json& last = snaps.back();
  const Json* prev = snaps.size() >= 2 ? &snaps[snaps.size() - 2] : nullptr;

  os << "cosparse-top  " << header_line(last) << "\n";
  const double wall_ms = number_or(last.find("wall_ms"), 0.0);
  const double iterations = number_or(last.find("iterations"), 0.0);
  os << "snapshot #" << Table::fmt(number_or(last.find("seq"), 0.0), 0)
     << "  wall " << Table::fmt(wall_ms, 1) << " ms  iterations "
     << Table::fmt(iterations, 0);
  if (prev != nullptr) {
    os << "  rate "
       << rate_cell(iterations - number_or(prev->find("iterations"), 0.0),
                    wall_ms - number_or(prev->find("wall_ms"), 0.0))
       << " it/s";
  }
  os << "\n";
  render_metrics(os, last, prev);
  render_tiles(os, last, bar_width);
  render_slo(os, snaps);
}

}  // namespace

void render_dashboard(std::ostream& os, const std::vector<Json>& snaps,
                      int width) {
  if (width <= 0) {
    render_dashboard_impl(os, snaps, 40);
    return;
  }
  // Narrow terminal: shrink the busy bars to leave room for the
  // "  tile NN |" prefix and the "| <cycles>" suffix (~24 columns), then
  // hard-clip every rendered line — a wrapped line would double the frame
  // height and tear the --follow home+clear repaint.
  std::ostringstream buf;
  render_dashboard_impl(buf, snaps, std::clamp(width - 24, 8, 40));
  std::istringstream lines(buf.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.size() > static_cast<std::size_t>(width)) {
      line.resize(static_cast<std::size_t>(width));
    }
    os << line << "\n";
  }
}

int detect_terminal_width() {
#ifdef COSPARSE_TOP_HAS_TTY
  if (::isatty(STDOUT_FILENO) != 0) {
    ::winsize ws{};
    if (::ioctl(STDOUT_FILENO, TIOCGWINSZ, &ws) == 0 && ws.ws_col > 0) {
      return static_cast<int>(ws.ws_col);
    }
    if (const char* cols = std::getenv("COLUMNS")) {
      char* end = nullptr;
      const long v = std::strtol(cols, &end, 10);
      if (end != nullptr && *end == '\0' && v > 0) {
        return static_cast<int>(v);
      }
    }
  }
#endif
  return 0;
}

int top_main(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  std::string path;
  bool follow = false;
  long refresh_ms = 500;
  long frames = 0;      // 0 = until interrupted (follow mode only)
  long width = -1;      // -1 = auto-detect from the terminal; 0 = unlimited
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") {
      follow = true;
    } else if (arg == "--refresh-ms" || arg == "--frames" ||
               arg == "--width") {
      if (i + 1 >= argc) {
        err << "cosparse-top: " << arg << " needs a value\n";
        return usage(err);
      }
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < 0) {
        err << "cosparse-top: bad value for " << arg << ": " << argv[i]
            << "\n";
        return usage(err);
      }
      (arg == "--refresh-ms"
           ? refresh_ms
           : (arg == "--frames" ? frames : width)) = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(out);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "cosparse-top: unknown option " << arg << "\n";
      return usage(err);
    } else if (path.empty()) {
      path = arg;
    } else {
      err << "cosparse-top: multiple input files\n";
      return usage(err);
    }
  }
  if (path.empty()) return usage(err);
  if (width < 0) width = detect_terminal_width();

  long frame = 0;
  while (true) {
    std::string text;
    {
      std::ifstream in(path);
      if (in.good()) {
        std::stringstream buf;
        buf << in.rdbuf();
        text = buf.str();
      } else if (!follow) {
        err << "cosparse-top: cannot open " << path << "\n";
        return 2;
      }
      // In follow mode a missing file just renders the waiting
      // placeholder — cosparse-top may be started before the producer.
    }
    if (follow) out << "\x1b[H\x1b[2J";  // home + clear: repaint in place
    render_dashboard(out, parse_snapshots(text), static_cast<int>(width));
    out.flush();
    ++frame;
    if (!follow || (frames > 0 && frame >= frames)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
  }
  return 0;
}

}  // namespace cosparse::tools
