// cosparse-lint: static verifier for run plans, run reports, telemetry
// exports and — since the `code` subcommand — the source tree itself.
//
// Subcommands, none of which executes the simulator:
//
//   plan <plan.json>... [options]
//     runs the config-legality, address-map and decision-tree passes over
//     each cosparse.run_plan/v1 document and prints the findings. Exits
//     nonzero when any plan has errors (with --strict, also on warnings)
//     so CI can gate on it.
//
//   report <report.json>... [options]
//     runs the schema/invariant pass over cosparse.run_report/v1
//     documents — the same checks the check_report smoke gate and the
//     observability unit tests enforce (including the telemetry section
//     when present).
//
//   telemetry <file>... [options]
//     lints exported telemetry artifacts: *.prom / *.txt files as
//     OpenMetrics text expositions, everything else as snapshot JSONL
//     streams (schema per line, strictly increasing seq, monotone
//     wall_ms/iterations).
//
//   serve <config.json>... [options]
//     lints cosparse.serve_config/v1 documents — the trace configs
//     cosparsed and bench/serve_load replay (schema, field types/ranges,
//     dataset-registry cross-references, self-defeating knob combos).
//
//   code [compile_commands.json] [--root <dir>] [options]
//     token/declaration-level scan of the source tree (src/analyze/):
//     signal_safety, fp_exactness, determinism and phase_hygiene passes
//     over <root>/{src,bench,examples}. The root defaults to the parent
//     of the compile db's directory (i.e. the source checkout when the
//     db is <root>/build/compile_commands.json). Without a compile db
//     the flag checks degrade to a warning.
//
// options (uniform across subcommands):
//   --json               print one cosparse.lint_findings/v1 document
//                        covering every linted subject
//   --strict             exit nonzero on warnings too
//   --baseline <file>    cosparse.lint_baseline/v1 suppressions; matched
//                        findings stay visible but do not gate
//   --report-out <file>  also write the lint_findings JSON to <file>
//
// The driver logic lives here (library target cosparse_lint_lib) so
// tests/tools/test_cosparse_lint.cpp can run the CLI on crafted inputs
// without spawning a process; cosparse_lint_main.cpp is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>

#include "verify/verify.h"

namespace cosparse::tools {

/// Human-readable rendering: one line per finding
/// ("error[config.illegal-pair] @kernel.hw: ..."), then a summary line.
/// Baseline-suppressed findings are prefixed "suppressed".
void print_lint_report(std::ostream& os, const verify::LintReport& report);

/// Full CLI (argument parsing + file IO). Returns the process exit code:
/// 0 clean, 1 findings at or above the gating severity, 2 usage error
/// (including an unreadable --baseline file).
int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace cosparse::tools
