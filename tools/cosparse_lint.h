// cosparse-lint: static verifier for run plans and run reports.
//
// Two subcommands, neither of which executes the simulator:
//
//   plan <plan.json>... [--json] [--strict] [--report-out <file>]
//     runs the config-legality, address-map and decision-tree passes over
//     each cosparse.run_plan/v1 document and prints the findings. Exits
//     nonzero when any plan has errors (with --strict, also on warnings)
//     so CI can gate on it. --json prints the cosparse.lint_report/v1
//     documents instead of the human-readable table; --report-out writes
//     the (last) lint report to a file as well.
//
//   report <report.json>... [--json] [--strict]
//     runs the schema/invariant pass over cosparse.run_report/v1
//     documents — the same checks the check_report smoke gate and the
//     observability unit tests enforce (including the telemetry section
//     when present).
//
//   telemetry <file>... [--json] [--strict]
//     lints exported telemetry artifacts: *.prom / *.txt files as
//     OpenMetrics text expositions, everything else as snapshot JSONL
//     streams (schema per line, strictly increasing seq, monotone
//     wall_ms/iterations).
//
// The driver logic lives here (library target cosparse_lint_lib) so
// tests/tools/test_cosparse_lint.cpp can run the CLI on crafted plans
// without spawning a process; cosparse_lint_main.cpp is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>

#include "verify/verify.h"

namespace cosparse::tools {

/// Human-readable rendering: one line per finding
/// ("error[config.illegal-pair] @kernel.hw: ..."), then a summary line.
void print_lint_report(std::ostream& os, const verify::LintReport& report);

/// Full CLI (argument parsing + file IO). Returns the process exit code:
/// 0 clean, 1 findings at or above the gating severity, 2 usage error.
int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace cosparse::tools
