#include <iostream>

#include "cosparse_top.h"

int main(int argc, char** argv) {
  return cosparse::tools::top_main(argc, argv, std::cout, std::cerr);
}
