#include "cosparse_prof.h"

#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/table.h"
#include "obs/flame.h"
#include "obs/histogram.h"
#include "obs/report.h"

namespace cosparse::tools {

namespace {

/// Looks up a dotted path ("totals.cycles"); nullptr when absent.
const Json* find_path(const Json& doc, const std::string& path) {
  const Json* cur = &doc;
  std::size_t pos = 0;
  while (pos < path.size()) {
    const std::size_t dot = path.find('.', pos);
    const std::string key =
        path.substr(pos, dot == std::string::npos ? dot : dot - pos);
    if (!cur->is_object()) return nullptr;
    cur = cur->find(key);
    if (cur == nullptr) return nullptr;
    if (dot == std::string::npos) break;
    pos = dot + 1;
  }
  return cur;
}

double number_at(const Json& doc, const std::string& path, bool* found) {
  const Json* v = find_path(doc, path);
  if (v == nullptr || !v->is_number()) {
    *found = false;
    return 0.0;
  }
  *found = true;
  return v->as_double();
}

void add_metric(DiffResult& out, const std::string& name, const Json& a,
                const Json& b, const std::string& path, bool gated,
                const DiffOptions& opts) {
  bool fa = false;
  bool fb = false;
  const double va = number_at(a, path, &fa);
  const double vb = number_at(b, path, &fb);
  if (!fa || !fb) return;  // not comparable across these two reports
  DiffRow row;
  row.metric = name;
  row.baseline = va;
  row.candidate = vb;
  if (va == 0.0) {
    row.rel_change = vb == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  } else {
    row.rel_change = (vb - va) / va;
  }
  row.gated = gated;
  row.regressed = gated && row.rel_change > opts.max_regress;
  out.regressed = out.regressed || row.regressed;
  out.rows.push_back(std::move(row));
}

std::string fmt_count(double v) {
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    os << Table::fmt(v);
  }
  return os.str();
}

std::string fmt_rel(double rel) {
  if (std::isinf(rel)) return "new";
  return (rel >= 0 ? "+" : "") + Table::fmt(rel * 100.0, 2) + "%";
}

/// DRAM read+write bytes of a stats-shaped object (absent => not found).
double dram_bytes_of(const Json& doc, const std::string& prefix, bool* found) {
  bool fr = false;
  bool fw = false;
  const double r = number_at(doc, prefix + ".dram_read_bytes", &fr);
  const double w = number_at(doc, prefix + ".dram_write_bytes", &fw);
  *found = fr && fw;
  return r + w;
}

/// True when the report came from a native-mode run: such reports carry no
/// cycle/energy/memory sections by design, and summarize/diff annotate
/// that instead of silently printing nothing. Engine reports stamp
/// config.engine.exec_mode; bench harness reports stamp host.exec_mode.
bool is_native_report(const Json& doc) {
  for (const char* path : {"config.engine.exec_mode", "host.exec_mode"}) {
    const Json* v = find_path(doc, path);
    if (v != nullptr && v->is_string() && v->as_string() == "native") {
      return true;
    }
  }
  return false;
}

}  // namespace

double parse_regress_limit(const std::string& text) {
  COSPARSE_REQUIRE(!text.empty(), "--max-regress: empty value");
  std::string t = text;
  bool percent = true;
  if (t.back() == '%') {
    t.pop_back();
  } else if (t.back() == 'x') {
    // "0.05x" form: already a fraction.
    t.pop_back();
    percent = false;
  }
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(t, &used);
  } catch (const std::exception&) {
    throw Error("--max-regress: cannot parse \"" + text + "\"");
  }
  COSPARSE_REQUIRE(used == t.size(),
                   "--max-regress: trailing characters in \"" + text + "\"");
  COSPARSE_REQUIRE(v >= 0.0, "--max-regress: negative limit");
  return percent ? v / 100.0 : v;
}

DiffResult diff_reports(const Json& baseline, const Json& candidate,
                        const DiffOptions& opts) {
  DiffResult out;
  // Gated metrics: the performance envelope a change must not degrade.
  add_metric(out, "cycles", baseline, candidate, "totals.cycles",
             /*gated=*/true, opts);
  add_metric(out, "l1_misses", baseline, candidate, "stats.l1_misses",
             /*gated=*/true, opts);
  add_metric(out, "l2_misses", baseline, candidate, "stats.l2_misses",
             /*gated=*/true, opts);
  {
    bool fa = false;
    bool fb = false;
    const double va = dram_bytes_of(baseline, "stats", &fa);
    const double vb = dram_bytes_of(candidate, "stats", &fb);
    if (fa && fb) {
      DiffRow row;
      row.metric = "dram_bytes";
      row.baseline = va;
      row.candidate = vb;
      row.rel_change =
          va == 0.0
              ? (vb == 0.0 ? 0.0 : std::numeric_limits<double>::infinity())
              : (vb - va) / va;
      row.gated = true;
      row.regressed = row.rel_change > opts.max_regress;
      out.regressed = out.regressed || row.regressed;
      out.rows.push_back(std::move(row));
    }
  }
  // Informational metrics.
  add_metric(out, "energy_pj", baseline, candidate, "totals.energy_pj",
             /*gated=*/false, opts);
  add_metric(out, "flushed_dirty_lines", baseline, candidate,
             "stats.flushed_dirty_lines", /*gated=*/false, opts);
  // Per-region miss deltas (only regions present in both reports). Region
  // labels contain dots ("matrix.elems"), so navigate the objects directly
  // instead of going through the dotted-path helper.
  const Json* ra = find_path(baseline, "memory_profile.regions");
  const Json* rb = find_path(candidate, "memory_profile.regions");
  if (ra != nullptr && rb != nullptr && ra->is_object() && rb->is_object()) {
    const auto counter_of = [](const Json& region, const char* counter,
                               bool* found) {
      const Json* counters = region.find("counters");
      const Json* v =
          counters == nullptr ? nullptr : counters->find(counter);
      if (v == nullptr || !v->is_number()) {
        *found = false;
        return 0.0;
      }
      *found = true;
      return v->as_double();
    };
    for (const auto& [label, region_a] : ra->members()) {
      const Json* region_b = rb->find(label);
      if (region_b == nullptr) continue;
      for (const char* counter : {"l1_misses", "l2_misses"}) {
        bool fa = false;
        bool fb = false;
        const double va = counter_of(region_a, counter, &fa);
        const double vb = counter_of(*region_b, counter, &fb);
        if (!fa || !fb) continue;
        DiffRow row;
        row.metric = "region:" + label + "." + counter;
        row.baseline = va;
        row.candidate = vb;
        row.rel_change =
            va == 0.0
                ? (vb == 0.0 ? 0.0 : std::numeric_limits<double>::infinity())
                : (vb - va) / va;
        out.rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

void print_diff(std::ostream& os, const DiffResult& result,
                const DiffOptions& opts) {
  Table t({"metric", "baseline", "candidate", "change", "gate"});
  for (const DiffRow& row : result.rows) {
    t.add_row({row.metric, fmt_count(row.baseline), fmt_count(row.candidate),
               fmt_rel(row.rel_change),
               row.regressed ? "REGRESSED" : (row.gated ? "ok" : "-")});
  }
  t.print(os);
  if (result.regressed) {
    os << "FAIL: gated metric regressed beyond "
       << Table::fmt(opts.max_regress * 100.0, 2) << "%\n";
  } else {
    os << "OK: no gated metric regressed beyond "
       << Table::fmt(opts.max_regress * 100.0, 2) << "%\n";
  }
}

void summarize_report(std::ostream& os, const Json& doc,
                      const std::string& name) {
  os << "=== " << name << " ===\n";
  if (const Json* tool = doc.find("tool"); tool != nullptr) {
    os << "tool: " << tool->as_string();
    bool found = false;
    const double cycles = number_at(doc, "totals.cycles", &found);
    if (found) os << "   cycles: " << fmt_count(cycles);
    const double energy = number_at(doc, "totals.energy_pj", &found);
    if (found) os << "   energy_pj: " << fmt_count(energy);
    if (const Json* seed = find_path(doc, "config.seed"); seed != nullptr) {
      os << "   seed: " << seed->as_int();
    }
    os << "\n";
  }
  if (is_native_report(doc)) {
    os << "(native mode: no cycle model)\n";
    if (const Json* nat = doc.find("native");
        nat != nullptr && nat->is_object()) {
      bool f = false;
      os << "native: pull_iterations="
         << fmt_count(number_at(doc, "native.pull_iterations", &f))
         << " push_iterations="
         << fmt_count(number_at(doc, "native.push_iterations", &f));
      if (const Json* simd = nat->find("simd"); simd != nullptr) {
        os << " simd=" << simd->as_string();
      }
      os << "\n";
    }
  }

  if (const Json* regions = find_path(doc, "memory_profile.regions");
      regions != nullptr && regions->is_object()) {
    os << "\nmemory profile (per region):\n";
    Table t({"region", "l1_hits", "l1_misses", "l1_hit%", "l2_hits",
             "l2_misses", "dram_rd_B", "dram_wr_B", "row_hit%"});
    for (const auto& [label, entry] : regions->members()) {
      bool f = false;
      const double l1h = number_at(entry, "counters.l1_hits", &f);
      const double l1m = number_at(entry, "counters.l1_misses", &f);
      const double l2h = number_at(entry, "counters.l2_hits", &f);
      const double l2m = number_at(entry, "counters.l2_misses", &f);
      const double rdb = number_at(entry, "counters.dram_read_bytes", &f);
      const double wrb = number_at(entry, "counters.dram_write_bytes", &f);
      const double rh = number_at(entry, "counters.dram_row_hits", &f);
      const double rm = number_at(entry, "counters.dram_row_misses", &f);
      t.add_row({label, fmt_count(l1h), fmt_count(l1m),
                 l1h + l1m > 0 ? Table::fmt_pct(l1h / (l1h + l1m)) : "-",
                 fmt_count(l2h), fmt_count(l2m), fmt_count(rdb),
                 fmt_count(wrb),
                 rh + rm > 0 ? Table::fmt_pct(rh / (rh + rm)) : "-"});
    }
    t.print(os);

    // Per-tile view: every region's counters summed per tile.
    std::vector<double> tile_l1m;
    std::vector<double> tile_l2m;
    std::vector<double> tile_dram;
    for (const auto& [label, entry] : regions->members()) {
      (void)label;
      const Json* per_tile = entry.find("per_tile");
      if (per_tile == nullptr || !per_tile->is_array()) continue;
      const auto& tiles = per_tile->items();
      if (tile_l1m.size() < tiles.size()) {
        tile_l1m.resize(tiles.size(), 0.0);
        tile_l2m.resize(tiles.size(), 0.0);
        tile_dram.resize(tiles.size(), 0.0);
      }
      for (std::size_t i = 0; i < tiles.size(); ++i) {
        bool f = false;
        tile_l1m[i] += number_at(tiles[i], "l1_misses", &f);
        tile_l2m[i] += number_at(tiles[i], "l2_misses", &f);
        tile_dram[i] += number_at(tiles[i], "dram_read_bytes", &f) +
                        number_at(tiles[i], "dram_write_bytes", &f);
      }
    }
    if (!tile_l1m.empty()) {
      os << "\nmemory profile (per tile, all regions):\n";
      Table tt({"tile", "l1_misses", "l2_misses", "dram_B"});
      for (std::size_t i = 0; i < tile_l1m.size(); ++i) {
        tt.add_row({std::to_string(i), fmt_count(tile_l1m[i]),
                    fmt_count(tile_l2m[i]), fmt_count(tile_dram[i])});
      }
      tt.print(os);
    }
  }

  if (const Json* audit = find_path(doc, "decision_audit.invocations");
      audit != nullptr && audit->is_array()) {
    os << "\ndecision timeline (" << audit->items().size()
       << " invocations):\n";
    Table t({"inv", "density", "cvd", "margin", "sw/hw", "forced",
             "est_cycles(chosen)", "best_counterfactual"});
    for (const Json& rec : audit->items()) {
      bool f = false;
      const double density =
          number_at(rec, "features.vector_density", &f);
      const double cvd = number_at(rec, "cvd", &f);
      std::string sw = "?";
      std::string hw = "?";
      if (const Json* v = rec.find("sw"); v != nullptr) sw = v->as_string();
      if (const Json* v = rec.find("hw"); v != nullptr) hw = v->as_string();
      bool forced = false;
      if (const Json* v = rec.find("forced_sw"); v != nullptr) {
        forced = v->as_bool();
      }
      double chosen_cycles = 0.0;
      double best_cycles = std::numeric_limits<double>::infinity();
      std::string best_name = "-";
      if (const Json* cfs = rec.find("counterfactuals");
          cfs != nullptr && cfs->is_array()) {
        for (const Json& cf : cfs->items()) {
          bool cf_found = false;
          const double cyc = number_at(cf, "est_cycles", &cf_found);
          const Json* chosen = cf.find("chosen");
          if (chosen != nullptr && chosen->as_bool()) {
            chosen_cycles = cyc;
          } else if (cyc < best_cycles) {
            best_cycles = cyc;
            best_name = cf.find("sw")->as_string() + "/" +
                        cf.find("hw")->as_string();
          }
        }
      }
      const std::uint32_t inv =
          rec.find("invocation") != nullptr
              ? static_cast<std::uint32_t>(rec.find("invocation")->as_int())
              : 0;
      t.add_row({std::to_string(inv), Table::fmt(density, 4),
                 Table::fmt(cvd, 4), Table::fmt(density - cvd, 4),
                 sw + "/" + hw, forced ? "yes" : "no",
                 fmt_count(chosen_cycles),
                 std::isinf(best_cycles)
                     ? "-"
                     : best_name + " @" + fmt_count(best_cycles)});
    }
    t.print(os);
  }
  os << "\n";
}

void summarize_telemetry(std::ostream& os, const std::string& jsonl_text,
                         const std::string& name) {
  os << "=== " << name << " (telemetry) ===\n";
  std::istringstream in(jsonl_text);
  std::string line;
  std::vector<Json> snaps;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      snaps.push_back(Json::parse(line));
    } catch (const Error& e) {
      throw Error(name + " line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  if (snaps.empty()) {
    os << "(no snapshots)\n\n";
    return;
  }
  if (const Json* header = snaps.back().find("header");
      header != nullptr && header->is_object()) {
    os << "header:";
    for (const auto& [key, value] : header->members()) {
      os << " " << key << "="
         << (value.is_string() ? value.as_string() : value.dump());
    }
    os << "\n";
  }
  // Digests are cumulative, so the Δcount column shows each snapshot
  // window's own sample count.
  std::vector<std::pair<std::string, double>> prev_counts;
  const auto prev_count_of = [&](const std::string& metric) {
    for (const auto& [m, c] : prev_counts) {
      if (m == metric) return c;
    }
    return 0.0;
  };
  for (const Json& snap : snaps) {
    bool f = false;
    os << "\nsnapshot " << fmt_count(number_at(snap, "seq", &f))
       << "  wall_ms=" << Table::fmt(number_at(snap, "wall_ms", &f), 3)
       << "  iterations=" << fmt_count(number_at(snap, "iterations", &f))
       << "\n";
    const Json* hist = snap.find("hist");
    if (hist == nullptr || !hist->is_object() || hist->size() == 0) {
      // A snapshot with no observed metrics yet (e.g. a cadence tick
      // before any histogram recorded): say so instead of printing a
      // header-only table.
      os << "(no metrics)\n";
      continue;
    }
    Table t({"metric", "count", "Δcount", "mean", "p50", "p90", "p99",
             "p999", "max"});
    std::vector<std::pair<std::string, double>> counts;
    for (const auto& [metric, digest] : hist->members()) {
      const obs::HistogramSummary s = obs::HistogramSummary::from_json(digest);
      const double dcount =
          static_cast<double>(s.count) - prev_count_of(metric);
      counts.emplace_back(metric, static_cast<double>(s.count));
      t.add_row({metric, fmt_count(static_cast<double>(s.count)),
                 fmt_count(dcount), Table::fmt(s.mean()), Table::fmt(s.p50),
                 Table::fmt(s.p90), Table::fmt(s.p99), Table::fmt(s.p999),
                 Table::fmt(s.max)});
    }
    t.print(os);
    prev_counts = std::move(counts);
    if (const Json* violations = snap.find("slo_violations");
        violations != nullptr && violations->is_array()) {
      for (const Json& v : violations->items()) {
        const Json* msg = v.find("message");
        os << "SLO: " << (msg != nullptr ? msg->as_string() : v.dump())
           << "\n";
      }
    }
  }
  os << "\n";
}

namespace {

Json load_report(const std::string& path) {
  std::ifstream in(path);
  COSPARSE_REQUIRE(in.good(), "cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

std::string load_text(const std::string& path) {
  std::ifstream in(path);
  COSPARSE_REQUIRE(in.good(), "cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage(std::ostream& os) {
  os << "usage:\n"
     << "  cosparse-prof summarize <report.json>..."
     << " [--telemetry <file.jsonl>]...\n"
     << "  cosparse-prof diff <baseline.json> <candidate.json>"
     << " [--max-regress 5%]\n"
     << "  cosparse-prof extract <report.json> [--functional] [--out <file>]\n"
     << "  cosparse-prof flame <profile.folded> [--out <flame.html>]\n"
     << "  cosparse-prof flamediff <baseline.folded> <candidate.folded>"
     << " [--max-regress 5%]\n";
  return 2;
}

}  // namespace

int prof_main(int argc, const char* const* argv) {
  if (argc < 2) return usage(std::cerr);
  const std::string cmd = argv[1];
  try {
    if (cmd == "summarize") {
      std::vector<std::string> reports;
      std::vector<std::string> telemetry;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--telemetry") {
          COSPARSE_REQUIRE(i + 1 < argc, "--telemetry: missing value");
          telemetry.push_back(argv[++i]);
        } else if (arg.rfind("--telemetry=", 0) == 0) {
          telemetry.push_back(arg.substr(sizeof("--telemetry=") - 1));
        } else if (!arg.empty() && arg[0] == '-') {
          std::cerr << "cosparse-prof: unknown option " << arg << "\n";
          return 2;
        } else {
          reports.push_back(arg);
        }
      }
      if (reports.empty() && telemetry.empty()) return usage(std::cerr);
      for (const std::string& path : reports) {
        summarize_report(std::cout, load_report(path), path);
      }
      for (const std::string& path : telemetry) {
        summarize_telemetry(std::cout, load_text(path), path);
      }
      return 0;
    }
    if (cmd == "extract") {
      std::vector<std::string> files;
      std::string out_path;
      bool functional = false;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out") {
          COSPARSE_REQUIRE(i + 1 < argc, "--out: missing value");
          out_path = argv[++i];
        } else if (arg == "--functional") {
          functional = true;
        } else if (!arg.empty() && arg[0] == '-') {
          std::cerr << "cosparse-prof: unknown option " << arg << "\n";
          return 2;
        } else {
          files.push_back(arg);
        }
      }
      if (files.size() != 1) return usage(std::cerr);
      const Json report = load_report(files[0]);
      // --functional keeps only the mode-independent subset (results
      // digests, normalized iterations, decision audit) so a sim report
      // and a native report of the same run byte-compare equal.
      const std::string text =
          (functional ? obs::functional_subset(report)
                      : obs::results_subset(report))
              .dump(1) +
          "\n";
      if (out_path.empty()) {
        std::cout << text;
      } else {
        std::ofstream o(out_path);
        COSPARSE_REQUIRE(o.good(), "cannot write " + out_path);
        o << text;
      }
      return 0;
    }
    if (cmd == "diff") {
      DiffOptions opts;
      std::vector<std::string> files;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--max-regress") {
          COSPARSE_REQUIRE(i + 1 < argc, "--max-regress: missing value");
          opts.max_regress = parse_regress_limit(argv[++i]);
        } else if (arg.rfind("--max-regress=", 0) == 0) {
          opts.max_regress =
              parse_regress_limit(arg.substr(sizeof("--max-regress=") - 1));
        } else if (!arg.empty() && arg[0] == '-') {
          std::cerr << "cosparse-prof: unknown option " << arg << "\n";
          return 2;
        } else {
          files.push_back(arg);
        }
      }
      if (files.size() != 2) return usage(std::cerr);
      const Json baseline = load_report(files[0]);
      const Json candidate = load_report(files[1]);
      if (is_native_report(baseline) || is_native_report(candidate)) {
        // Cycle/miss gates need the simulator's counters; a native report
        // simply has none, so the comparable subset shrinks accordingly.
        std::cout << "(native mode: no cycle model)\n";
      }
      const DiffResult result = diff_reports(baseline, candidate, opts);
      print_diff(std::cout, result, opts);
      return result.regressed ? 1 : 0;
    }
    if (cmd == "flame") {
      std::vector<std::string> files;
      std::string out_path;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out") {
          COSPARSE_REQUIRE(i + 1 < argc, "--out: missing value");
          out_path = argv[++i];
        } else if (arg.rfind("--out=", 0) == 0) {
          out_path = arg.substr(sizeof("--out=") - 1);
        } else if (!arg.empty() && arg[0] == '-') {
          std::cerr << "cosparse-prof: unknown option " << arg << "\n";
          return 2;
        } else {
          files.push_back(arg);
        }
      }
      if (files.size() != 1) return usage(std::cerr);
      const obs::FoldedProfile profile =
          obs::FoldedProfile::parse(load_text(files[0]));
      std::cout << "=== " << files[0] << " (" << profile.total_samples
                << " samples) ===\n";
      obs::print_phase_table(std::cout, profile);
      if (out_path.empty()) out_path = files[0] + ".html";
      std::ofstream o(out_path);
      COSPARSE_REQUIRE(o.good(), "cannot write " + out_path);
      o << obs::render_flamegraph_html(profile, files[0]);
      std::cout << "wrote flamegraph to " << out_path << "\n";
      return 0;
    }
    if (cmd == "flamediff") {
      double max_regress = 0.05;
      std::vector<std::string> files;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--max-regress") {
          COSPARSE_REQUIRE(i + 1 < argc, "--max-regress: missing value");
          max_regress = parse_regress_limit(argv[++i]);
        } else if (arg.rfind("--max-regress=", 0) == 0) {
          max_regress =
              parse_regress_limit(arg.substr(sizeof("--max-regress=") - 1));
        } else if (!arg.empty() && arg[0] == '-') {
          std::cerr << "cosparse-prof: unknown option " << arg << "\n";
          return 2;
        } else {
          files.push_back(arg);
        }
      }
      if (files.size() != 2) return usage(std::cerr);
      const obs::FlameDiffResult result = obs::diff_folded(
          obs::FoldedProfile::parse(load_text(files[0])),
          obs::FoldedProfile::parse(load_text(files[1])), max_regress);
      print_flame_diff(std::cout, result, max_regress);
      return result.regressed ? 1 : 0;
    }
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      usage(std::cout);
      return 0;
    }
  } catch (const Error& e) {
    std::cerr << "cosparse-prof: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "cosparse-prof: unknown command " << cmd << "\n";
  return usage(std::cerr);
}

}  // namespace cosparse::tools
